//! Driver side of the socket transport: bind, handshake, per-connection
//! reader threads, and real-death detection.
//!
//! # Crash detection state machine
//!
//! Each accepted worker gets a dedicated reader thread that decodes
//! frames into the driver's event stream. The thread tracks the last
//! instant *any* byte arrived; workers write heartbeat frames from a
//! dedicated thread every [`SocketConfig::heartbeat_interval`], so a
//! healthy connection is never silent for long even while its worker
//! grinds through a large SSSP. A connection is declared dead — the
//! reader exits and drops its event sender, which the driver observes as
//! [`Polled::Down`](crate::transport::Polled) and feeds into the ordinary
//! crash re-deal path — on the first of:
//!
//! * **EOF / connection reset** (`kill -9`, a panic, a yanked cable):
//!   detected on the next read, typically immediately;
//! * **protocol corruption** (bad magic, malformed frame): the stream
//!   cannot be resynchronized, so it is treated as lost;
//! * **missed heartbeats**: silence longer than `heartbeat_interval ×
//!   heartbeat_misses` with the socket still open (a wedged process, a
//!   dead NAT entry).
//!
//! Workers that never complete the handshake within
//! [`SocketConfig::accept_timeout`] are crashes that happened before the
//! run: the driver re-deals their shares before gathering the first row.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use parapsp_parfor::{CancelStatus, CancelToken};

use crate::transport::{
    BindSpec, ControlSink, NodeControl, NodeEvent, Polled, SocketConfig, Transport, WorkerMode,
};
use crate::wire::{read_frame, write_frame, Frame, WorkerSetup, PROTOCOL_VERSION};

/// Why [`SocketTransport::start`] did not produce a transport.
#[derive(Debug)]
pub(crate) enum SocketStartError {
    /// The cancel token tripped while waiting for workers.
    Stopped(CancelStatus),
    /// Binding, spawning, or listening failed outright.
    Io(String),
}

/// A connected byte stream of either flavour.
#[derive(Debug)]
pub(crate) enum WireStream {
    /// TCP (loopback or otherwise).
    Tcp(TcpStream),
    /// Unix domain socket.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl WireStream {
    pub(crate) fn try_clone(&self) -> io::Result<WireStream> {
        match self {
            WireStream::Tcp(s) => s.try_clone().map(WireStream::Tcp),
            #[cfg(unix)]
            WireStream::Unix(s) => s.try_clone().map(WireStream::Unix),
        }
    }

    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            WireStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    pub(crate) fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            WireStream::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    /// Tears the connection down abruptly (both directions); used by a
    /// worker simulating a crash, so the driver sees a hard EOF rather
    /// than an orderly goodbye.
    pub(crate) fn shutdown_both(&self) {
        match self {
            WireStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            WireStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            WireStream::Unix(s) => s.flush(),
        }
    }
}

enum WireListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl WireListener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            WireListener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            WireListener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn accept_nonblocking(&self) -> io::Result<Option<WireStream>> {
        let accepted = match self {
            WireListener::Tcp(l) => l.accept().map(|(s, _)| WireStream::Tcp(s)),
            #[cfg(unix)]
            WireListener::Unix(l) => l.accept().map(|(s, _)| WireStream::Unix(s)),
        };
        match accepted {
            Ok(stream) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// A `Read` adapter that turns socket read timeouts into a silence
/// budget: short timeouts (the poll quantum) are retried, counting missed
/// heartbeat intervals, until either bytes arrive or the budget —
/// `heartbeat_interval × heartbeat_misses` since the last activity — is
/// exhausted, at which point the peer is presumed dead.
struct PatientReader {
    stream: WireStream,
    last_activity: Instant,
    interval: Duration,
    budget: Duration,
    misses: Arc<AtomicU64>,
    reported: u64,
}

impl Read for PatientReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Ok(0) => return Ok(0),
                Ok(read) => {
                    self.last_activity = Instant::now();
                    self.reported = 0;
                    return Ok(read);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    let silent = self.last_activity.elapsed();
                    let intervals = (silent.as_nanos() / self.interval.as_nanos().max(1)) as u64;
                    if intervals > self.reported {
                        self.misses
                            .fetch_add(intervals - self.reported, Ordering::Relaxed);
                        self.reported = intervals;
                    }
                    if silent > self.budget {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "heartbeat silence budget exhausted",
                        ));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Decodes frames from one worker into the driver's event stream. Exits
/// (dropping `events`, which the driver reads as the node's death) on
/// EOF, connection errors, framing corruption, or heartbeat silence.
fn reader_loop(mut patient: PatientReader, events: Sender<NodeEvent>) {
    loop {
        let frame = match read_frame(&mut patient) {
            Ok(frame) => frame,
            Err(_) => return,
        };
        let delivered = match frame {
            // Heartbeats already refreshed the silence clock inside
            // PatientReader; they carry no payload.
            Frame::Heartbeat => true,
            Frame::Rows(rows) => rows
                .into_iter()
                .all(|row| events.send(NodeEvent::Row(row)).is_ok()),
            Frame::HubFwd { to, msg } => events
                .send(NodeEvent::HubFwd {
                    to: to as usize,
                    msg,
                })
                .is_ok(),
            Frame::Stats(stats) => events.send(NodeEvent::Stats(stats)).is_ok(),
            // Anything else out of a worker mid-run is a protocol
            // violation; the stream is not trustworthy anymore.
            _ => return,
        };
        if !delivered {
            return; // transport dropped: the run is over
        }
    }
}

struct Link {
    /// Write half; dropped (set `None`) after the first failed write.
    writer: Option<WireStream>,
    events: Option<Receiver<NodeEvent>>,
    misses: Arc<AtomicU64>,
}

impl Link {
    fn dead() -> Link {
        // A pre-closed event stream: the driver sees Down immediately.
        let (_, rx) = unbounded();
        Link {
            writer: None,
            events: Some(rx),
            misses: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// The socket backend of the [`Transport`] seam.
pub(crate) struct SocketTransport {
    links: Vec<Link>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    children: Vec<Child>,
    /// Unix socket path to unlink at teardown.
    cleanup_path: Option<std::path::PathBuf>,
    /// How long `finish` waits per node for late events.
    drain_budget: Duration,
}

impl SocketTransport {
    /// Binds, launches workers per [`SocketConfig::workers`], and
    /// completes the handshake with each. Returns the transport plus the
    /// node ids whose workers never showed up (dead at start).
    pub(crate) fn start(
        config: &SocketConfig,
        setups: Vec<WorkerSetup>,
        token: Option<&CancelToken>,
    ) -> Result<(SocketTransport, Vec<usize>), SocketStartError> {
        let nodes = setups.len();
        let io_err = |context: &str, e: io::Error| SocketStartError::Io(format!("{context}: {e}"));

        let mut cleanup_path = None;
        let (listener, connect_addr) = match &config.bind {
            BindSpec::TcpEphemeral => {
                let listener = TcpListener::bind("127.0.0.1:0")
                    .map_err(|e| io_err("binding 127.0.0.1:0", e))?;
                let addr = listener
                    .local_addr()
                    .map_err(|e| io_err("reading bound address", e))?;
                (WireListener::Tcp(listener), addr.to_string())
            }
            BindSpec::Tcp(addr) => {
                let listener =
                    TcpListener::bind(addr).map_err(|e| io_err(&format!("binding {addr}"), e))?;
                let bound = listener
                    .local_addr()
                    .map_err(|e| io_err("reading bound address", e))?;
                (WireListener::Tcp(listener), bound.to_string())
            }
            #[cfg(unix)]
            BindSpec::Unix(path) => {
                // A stale socket file from a previous run blocks the bind.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)
                    .map_err(|e| io_err(&format!("binding {}", path.display()), e))?;
                cleanup_path = Some(path.clone());
                (WireListener::Unix(listener), path.display().to_string())
            }
        };
        listener
            .set_nonblocking()
            .map_err(|e| io_err("setting the listener non-blocking", e))?;
        if config.announce || matches!(config.workers, WorkerMode::External) {
            eprintln!("dist: listening on {connect_addr}; waiting for {nodes} worker(s)");
        }

        // Launch the workers (External mode launches nothing: somebody
        // else runs `parapsp node --connect <addr>`).
        let mut worker_threads = Vec::new();
        let mut children = Vec::new();
        match &config.workers {
            WorkerMode::Threads => {
                for _ in 0..nodes {
                    let addr = connect_addr.clone();
                    let options = crate::worker::WorkerOptions {
                        connect: config.connect,
                        write_timeout: config.write_timeout,
                        ..Default::default()
                    };
                    worker_threads.push(std::thread::spawn(move || {
                        // Failures surface on the driver side as a dead
                        // connection; nothing useful to do with them here.
                        let _ = crate::worker::run_worker(&addr, options);
                    }));
                }
            }
            WorkerMode::Spawn { program, args } => {
                for _ in 0..nodes {
                    let child = Command::new(program)
                        .args(args)
                        .arg("--connect")
                        .arg(&connect_addr)
                        .stdin(Stdio::null())
                        .spawn()
                        .map_err(|e| {
                            io_err(&format!("spawning worker {}", program.display()), e)
                        })?;
                    children.push(child);
                }
            }
            WorkerMode::External => {}
        }

        // Accept + handshake until every slot is filled or the clock (or
        // the token) runs out. Readers start immediately per connection,
        // so early workers stream rows while later ones still dial in.
        let deadline = Instant::now() + config.accept_timeout;
        let mut links: Vec<Link> = Vec::with_capacity(nodes);
        while links.len() < nodes {
            if let Some(token) = token {
                let status = token.poll();
                if status.is_stop() {
                    if let Some(path) = &cleanup_path {
                        let _ = std::fs::remove_file(path);
                    }
                    return Err(SocketStartError::Stopped(status));
                }
            }
            if Instant::now() >= deadline {
                break;
            }
            match listener.accept_nonblocking() {
                Ok(Some(stream)) => {
                    let slot = links.len();
                    // A botched handshake does not consume the slot: the
                    // worker that matters may still be dialing.
                    if let Ok(link) = handshake(stream, &setups[slot], config) {
                        links.push(link);
                    }
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                Err(e) => {
                    if let Some(path) = &cleanup_path {
                        let _ = std::fs::remove_file(path);
                    }
                    return Err(io_err("accepting a worker connection", e));
                }
            }
        }
        let dead_at_start: Vec<usize> = (links.len()..nodes).collect();
        while links.len() < nodes {
            links.push(Link::dead());
        }

        let drain_budget =
            (config.heartbeat_interval * config.heartbeat_misses).max(Duration::from_secs(5));
        Ok((
            SocketTransport {
                links,
                worker_threads,
                children,
                cleanup_path,
                drain_budget,
            },
            dead_at_start,
        ))
    }

    /// Heartbeat intervals that elapsed with no traffic from node `k`.
    pub(crate) fn heartbeat_misses(&self, k: usize) -> u64 {
        self.links[k].misses.load(Ordering::Relaxed)
    }

    /// Teardown: drains late events (bounded per node), joins worker
    /// threads, reaps worker processes, and unlinks the Unix socket.
    /// Returns the drained events for the driver to fold in.
    pub(crate) fn finish(&mut self) -> Vec<(usize, NodeEvent)> {
        let mut late = Vec::new();
        for (k, link) in self.links.iter_mut().enumerate() {
            let Some(events) = link.events.take() else {
                continue;
            };
            let deadline = Instant::now() + self.drain_budget;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break; // a worker still alive past the budget keeps its peace
                }
                match events.recv_timeout(left.min(Duration::from_millis(50))) {
                    Ok(event) => late.push((k, event)),
                    Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => {}
                }
            }
            // Closing our write half unblocks a worker still waiting on
            // its inbox (e.g. one this driver wrongly presumed dead).
            link.writer = None;
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        for mut child in self.children.drain(..) {
            let _ = child.wait();
        }
        if let Some(path) = self.cleanup_path.take() {
            let _ = std::fs::remove_file(&path);
        }
        late
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        if let Some(path) = self.cleanup_path.take() {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Driver side of the per-connection handshake: expect Hello, ship the
/// Setup, wait for Ready, then hand the read half to a reader thread.
fn handshake(stream: WireStream, setup: &WorkerSetup, config: &SocketConfig) -> io::Result<Link> {
    // Handshake reads get a generous fixed timeout; a worker that stalls
    // here is dropped without consuming the slot.
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let mut handshake_half = stream.try_clone()?;
    let hello = read_frame(&mut handshake_half)?;
    let Frame::Hello {
        version,
        run_id,
        epoch,
        ..
    } = hello
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "worker did not open with Hello",
        ));
    };
    if version != PROTOCOL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("worker speaks protocol v{version}, driver v{PROTOCOL_VERSION}"),
        ));
    }
    // Run-identity checks for driver restarts. A `run_id` of 0 is a fresh
    // worker with no history; anything else is the identity of the last
    // Setup the worker accepted, and it must be *this* run's — a worker
    // from a different ledger/run must not contribute rows here. Within
    // the same run, a worker cannot have seen an epoch newer than ours
    // (epochs only grow by re-opening the ledger we hold); older epochs
    // are the expected case after a driver restart and simply re-setup.
    if run_id != 0 && run_id != setup.run_id {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "worker belongs to run {run_id:#018x}, this driver is run {:#018x}",
                setup.run_id
            ),
        ));
    }
    if run_id == setup.run_id && epoch > setup.epoch {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "worker handshakes from future epoch {epoch} (driver is at epoch {})",
                setup.epoch
            ),
        ));
    }
    write_frame(&mut handshake_half, &Frame::Setup(Box::new(setup.clone())))?;
    let Frame::Ready = read_frame(&mut handshake_half)? else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "worker did not acknowledge Setup with Ready",
        ));
    };

    // From here on, reads are paced by the heartbeat silence budget.
    let reader_half = stream.try_clone()?;
    reader_half.set_read_timeout(Some(config.read_timeout))?;
    let misses = Arc::new(AtomicU64::new(0));
    let patient = PatientReader {
        stream: reader_half,
        last_activity: Instant::now(),
        interval: config.heartbeat_interval,
        budget: config.heartbeat_interval * config.heartbeat_misses,
        misses: Arc::clone(&misses),
        reported: 0,
    };
    let (tx, rx) = unbounded();
    // Reader threads are detached: they self-terminate on EOF, silence,
    // or when the event receiver is dropped.
    std::thread::spawn(move || reader_loop(patient, tx));
    Ok(Link {
        writer: Some(stream),
        events: Some(rx),
        misses,
    })
}

impl ControlSink for SocketTransport {
    fn control(&mut self, node: usize, message: NodeControl) {
        let Some(writer) = self.links[node].writer.as_mut() else {
            return;
        };
        let frame = match message {
            NodeControl::Hub(msg) => Frame::Hub(msg),
            NodeControl::Assign(s) => Frame::Assign(s),
            NodeControl::Resend(s) => Frame::Resend(s),
            NodeControl::Shutdown => Frame::Shutdown,
        };
        if write_frame(writer, &frame).is_err() {
            // The reader thread will report the death; just stop writing.
            self.links[node].writer = None;
        }
    }
}

impl Transport for SocketTransport {
    fn try_event(&mut self, node: usize) -> Polled {
        match self.links[node].events.as_ref() {
            None => Polled::Down,
            Some(events) => match events.try_recv() {
                Ok(event) => Polled::Event(event),
                Err(TryRecvError::Empty) => Polled::Empty,
                Err(TryRecvError::Disconnected) => Polled::Down,
            },
        }
    }

    fn event_timeout(&mut self, node: usize, timeout: Duration) -> Polled {
        match self.links[node].events.as_ref() {
            None => Polled::Down,
            Some(events) => match events.recv_timeout(timeout) {
                Ok(event) => Polled::Event(event),
                Err(RecvTimeoutError::Timeout) => Polled::Empty,
                Err(RecvTimeoutError::Disconnected) => Polled::Down,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{dist_apsp, dist_apsp_cancellable, ClusterConfig};
    use crate::fault::FaultPlan;
    use crate::transport::{BindSpec, ConnectRetry, SocketConfig, TransportSpec, WorkerMode};
    use crate::worker::{run_worker, WorkerOptions};
    use parapsp_core::baselines::apsp_dijkstra;
    use parapsp_core::RunOutcome;
    use parapsp_graph::generate::{barabasi_albert, WeightSpec};

    fn fast_socket(workers: WorkerMode) -> SocketConfig {
        SocketConfig {
            workers,
            heartbeat_interval: Duration::from_millis(10),
            heartbeat_misses: 100,
            accept_timeout: Duration::from_secs(20),
            ..SocketConfig::default()
        }
    }

    fn temp_sock(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("parapsp-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn tcp_socket_cluster_matches_sequential() {
        let g = barabasi_albert(120, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 41).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 3,
                transport: TransportSpec::Socket(fast_socket(WorkerMode::Threads)),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.node_stats.len(), 3);
        assert!(out.node_stats.iter().all(|s| !s.crashed));
        assert_eq!(out.node_stats.iter().map(|s| s.sources).sum::<u64>(), 120);
        assert_eq!(out.gather_rejected, 0);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_cluster_matches_sequential() {
        let path = temp_sock("unix-clean");
        let g = barabasi_albert(90, 3, WeightSpec::Unit, 42).unwrap();
        let reference = apsp_dijkstra(&g);
        let mut socket = fast_socket(WorkerMode::Threads);
        socket.bind = BindSpec::Unix(path.clone());
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 2,
                transport: TransportSpec::Socket(socket),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert!(!path.exists(), "socket file must be unlinked at teardown");
    }

    #[test]
    fn socket_fault_storm_is_bit_identical_to_the_clean_run() {
        let g = barabasi_albert(100, 3, WeightSpec::Uniform { lo: 1, hi: 20 }, 43).unwrap();
        let clean = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 3,
                ..ClusterConfig::default()
            },
        );
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 3,
                faults: FaultPlan::seeded(21)
                    .crash_node_after(1, 2)
                    .with_drop_probability(0.25)
                    .with_corrupt_probability(0.2),
                transport: TransportSpec::Socket(fast_socket(WorkerMode::Threads)),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(clean.dist.first_difference(&out.dist), None);
        let crashed: Vec<bool> = out.node_stats.iter().map(|s| s.crashed).collect();
        assert_eq!(crashed, vec![false, true, false]);
        assert!(
            out.gather_rejected > 0,
            "a 20% corruption plan should reject at least one delivery"
        );
        assert!(
            out.node_stats.iter().map(|s| s.sources).sum::<u64>() >= 100,
            "every source must be computed at least once"
        );
    }

    #[cfg(unix)]
    #[test]
    fn silent_connection_is_declared_dead_by_missed_heartbeats() {
        let path = temp_sock("silent");
        let addr = path.display().to_string();
        let g = barabasi_albert(60, 3, WeightSpec::Unit, 44).unwrap();
        let reference = apsp_dijkstra(&g);

        // One honest worker...
        let worker_addr = addr.clone();
        let worker = std::thread::spawn(move || {
            let options = WorkerOptions {
                connect: ConnectRetry {
                    attempts: 200,
                    base: Duration::from_millis(5),
                    cap: Duration::from_millis(50),
                    seed: 7,
                },
                ..WorkerOptions::default()
            };
            run_worker(&worker_addr, options)
        });
        // ...and one impostor that completes the handshake, then never
        // sends another byte (a wedged process with a live socket).
        let impostor_addr = addr.clone();
        std::thread::spawn(move || {
            let mut stream = loop {
                match UnixStream::connect(&impostor_addr) {
                    Ok(stream) => break WireStream::Unix(stream),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            };
            write_frame(
                &mut stream,
                &Frame::Hello {
                    version: PROTOCOL_VERSION,
                    reconnects: 0,
                    run_id: 0,
                    epoch: 0,
                },
            )
            .unwrap();
            let _setup = read_frame(&mut stream).unwrap();
            write_frame(&mut stream, &Frame::Ready).unwrap();
            // Hold the connection open, silently.
            std::thread::sleep(Duration::from_secs(30));
            drop(stream);
        });

        let mut socket = fast_socket(WorkerMode::External);
        socket.bind = BindSpec::Unix(path);
        socket.heartbeat_interval = Duration::from_millis(10);
        socket.heartbeat_misses = 5; // 50ms of silence = dead
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 2,
                transport: TransportSpec::Socket(socket),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        let crashed: Vec<&crate::cluster::NodeStats> =
            out.node_stats.iter().filter(|s| s.crashed).collect();
        assert_eq!(crashed.len(), 1, "exactly the silent peer must be dead");
        assert_eq!(crashed[0].sources, 0);
        assert!(
            crashed[0].heartbeat_misses >= 5,
            "death must be attributed to missed heartbeats, got {}",
            crashed[0].heartbeat_misses
        );
        worker.join().unwrap().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn a_worker_that_never_connects_is_dead_at_start() {
        let path = temp_sock("missing");
        let addr = path.display().to_string();
        let g = barabasi_albert(50, 3, WeightSpec::Unit, 45).unwrap();
        let reference = apsp_dijkstra(&g);

        // Two slots, one worker: the second slot expires with the accept
        // timeout and its sources are re-dealt before the gather starts.
        let worker = std::thread::spawn(move || {
            let options = WorkerOptions {
                connect: ConnectRetry {
                    attempts: 200,
                    base: Duration::from_millis(5),
                    cap: Duration::from_millis(50),
                    seed: 8,
                },
                ..WorkerOptions::default()
            };
            run_worker(&addr, options)
        });
        let mut socket = fast_socket(WorkerMode::External);
        socket.bind = BindSpec::Unix(path);
        socket.accept_timeout = Duration::from_millis(900);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 2,
                transport: TransportSpec::Socket(socket),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.node_stats.iter().filter(|s| s.crashed).count(), 1);
        worker.join().unwrap().unwrap();
    }

    #[test]
    fn run_traced_surfaces_the_extended_node_stats() {
        use parapsp_core::engine::{RunConfig, Runner};

        let g = barabasi_albert(80, 3, WeightSpec::Unit, 47).unwrap();
        let engine = crate::cluster::DistEngine::new(ClusterConfig {
            nodes: 2,
            transport: TransportSpec::Socket(fast_socket(WorkerMode::Threads)),
            ..ClusterConfig::default()
        });
        let (out, per_source) = Runner::new(RunConfig::new(1)).run_traced(engine, &g);
        assert_eq!(per_source.len(), 80);
        assert_eq!(apsp_dijkstra(&g).first_difference(&out.dist), None);
        // The socket-only counters travel through the engine output: no
        // reconnects on a first dial, and heartbeat-miss observations are
        // per node, bounded by the configured budget on a healthy run.
        assert_eq!(out.node_stats.len(), 2);
        assert!(out.node_stats.iter().all(|s| !s.crashed));
        assert!(out.node_stats.iter().all(|s| s.reconnects == 0));
        assert!(out.node_stats.iter().all(|s| s.heartbeat_misses < 100));
    }

    #[test]
    fn expired_deadline_stops_a_socket_run_before_the_gather() {
        let g = barabasi_albert(40, 2, WeightSpec::Unit, 46).unwrap();
        let token = CancelToken::with_deadline(Duration::ZERO);
        let outcome = dist_apsp_cancellable(
            &g,
            ClusterConfig {
                nodes: 2,
                transport: TransportSpec::Socket(fast_socket(WorkerMode::Threads)),
                ..ClusterConfig::default()
            },
            &token,
        );
        assert!(matches!(outcome, RunOutcome::DeadlineExceeded { .. }));
    }
}
