//! The transport seam between the cluster driver and its nodes.
//!
//! The driver logic (streaming gather, checksum retries, crash re-deals,
//! the stall watchdog) is written once against two small traits:
//!
//! * [`ControlSink`] — how the driver talks *to* a node (hub relays,
//!   assignments, re-send requests, shutdown);
//! * [`Transport`] — how the driver hears *from* a node (rows, hub
//!   forwards, final stats), where a closed event stream **is** the crash
//!   signal.
//!
//! Two backends implement the pair: [`ChannelTransport`] (the original
//! in-process crossbeam channels, one thread per node) and the socket
//! transport in [`crate::socket`] (length-prefix frames over TCP or Unix
//! sockets to real worker processes). The node side is likewise written
//! once against [`NodeIo`], so an in-process node thread and a remote
//! worker process run byte-for-byte the same protocol logic — including
//! every deterministic fault decision.

use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::cluster::NodeStats;
use crate::node::RowMessage;

/// How a distributed run moves rows between the driver and its nodes.
//
// A config value built once per run — the size skew between variants
// never sits on a hot path, so boxing `SocketConfig` would only add noise
// at every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Default)]
pub enum TransportSpec {
    /// One OS thread per node, crossbeam channels for the wire. No
    /// processes are spawned; this is the fastest backend and the default.
    #[default]
    InProcess,
    /// Length-prefix-framed sockets to worker processes (or worker
    /// threads speaking the same wire protocol).
    Socket(SocketConfig),
}

/// Where the driver listens for workers.
#[derive(Debug, Clone, Default)]
pub enum BindSpec {
    /// Loopback TCP on an ephemeral port (the default: always available,
    /// no path cleanup).
    #[default]
    TcpEphemeral,
    /// An explicit TCP listen address, e.g. `127.0.0.1:7171`.
    Tcp(String),
    /// A Unix domain socket at this path; removed when the run ends.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

/// Who runs the workers of a socket-transport cluster.
#[derive(Debug, Clone, Default)]
pub enum WorkerMode {
    /// The driver spawns one in-process thread per node, each connecting
    /// back over the real socket and speaking the full wire protocol.
    /// This exercises every byte of the framing without process overhead,
    /// so property tests can run the socket path at scale.
    #[default]
    Threads,
    /// The driver spawns one OS process per node: `program args...
    /// --connect <addr>`. Used by the CLI to self-spawn `node`
    /// subcommand workers.
    Spawn {
        /// Worker executable (typically `std::env::current_exe()`).
        program: std::path::PathBuf,
        /// Arguments placed before the generated `--connect <addr>`.
        args: Vec<String>,
    },
    /// Workers are launched externally (`parapsp node --connect ...`);
    /// the driver just waits for them on the listen address.
    External,
}

/// Seeded exponential backoff for a worker dialing the driver.
///
/// Attempt `i` (zero-based) sleeps `min(cap, base << i)` plus a
/// deterministic jitter of up to `base`, drawn from `seed` and `i` — so a
/// worker that starts before the driver is listening connects as soon as
/// the listener appears, without thundering in lockstep with its peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectRetry {
    /// Total connection attempts before giving up.
    pub attempts: u32,
    /// First backoff sleep; doubles per attempt. Also the jitter span.
    pub base: Duration,
    /// Upper bound on a single backoff sleep (jitter excluded).
    pub cap: Duration,
    /// Jitter seed, so retry timing is reproducible in tests.
    pub seed: u64,
}

impl Default for ConnectRetry {
    fn default() -> Self {
        ConnectRetry {
            attempts: 20,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 0x5EED,
        }
    }
}

/// Tuning for the socket transport.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Listen address.
    pub bind: BindSpec,
    /// Who launches the workers.
    pub workers: WorkerMode,
    /// Worker keepalive interval: each worker writes a heartbeat frame
    /// this often from a dedicated thread, so an alive-but-computing
    /// worker is never mistaken for a dead one.
    pub heartbeat_interval: Duration,
    /// Consecutive silent intervals before the driver declares a worker
    /// dead and re-deals its sources (EOF and connection resets are
    /// detected immediately regardless).
    pub heartbeat_misses: u32,
    /// Socket-level read poll quantum for the driver's per-connection
    /// reader threads (how often the silence budget is re-checked).
    pub read_timeout: Duration,
    /// Socket-level write timeout on both ends; a blocked write past this
    /// is treated as the connection dying.
    pub write_timeout: Duration,
    /// How long the driver waits for all workers to connect and complete
    /// the handshake; slots still empty when it expires are treated as
    /// crashed-at-start and their sources re-dealt.
    pub accept_timeout: Duration,
    /// Completed rows buffered per worker before a gather frame is
    /// forced out (idle workers always flush).
    pub row_batch: usize,
    /// Worker-side dial retry/backoff.
    pub connect: ConnectRetry,
    /// Print the bound listen address to stderr (useful with
    /// [`WorkerMode::External`], where a human starts the workers).
    pub announce: bool,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            bind: BindSpec::default(),
            workers: WorkerMode::default(),
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_misses: 50,
            read_timeout: Duration::from_millis(10),
            write_timeout: Duration::from_secs(2),
            accept_timeout: Duration::from_secs(10),
            row_batch: 4,
            connect: ConnectRetry::default(),
            announce: false,
        }
    }
}

/// A control message from the driver to one node.
#[derive(Debug, Clone)]
pub(crate) enum NodeControl {
    /// A hub row broadcast by a peer (relayed by the driver on the socket
    /// transport, sent directly on channels).
    Hub(RowMessage),
    /// Take ownership of this source.
    Assign(u32),
    /// Re-send this source's row after a rejected delivery.
    Resend(u32),
    /// All rows gathered; exit.
    Shutdown,
}

/// An event from one node to the driver.
#[derive(Debug, Clone)]
pub(crate) enum NodeEvent {
    /// A completed (possibly corrupted-in-flight) gather row.
    Row(RowMessage),
    /// Socket transport only: relay this hub row to peer `to`.
    HubFwd {
        /// Destination node id.
        to: usize,
        /// The sealed row.
        msg: RowMessage,
    },
    /// Socket transport only: the node's final stats on clean shutdown.
    Stats(NodeStats),
}

/// Result of polling one node's event stream.
#[derive(Debug)]
pub(crate) enum Polled {
    /// An event arrived.
    Event(NodeEvent),
    /// Nothing pending (or the timeout elapsed).
    Empty,
    /// The stream is closed and fully drained: the node is dead.
    Down,
}

/// The driver's outbound half: control messages to a node. Send failures
/// are swallowed — a dead node's death is reported by its event stream,
/// which is the single source of truth for liveness.
pub(crate) trait ControlSink {
    /// Sends `message` to node `node` (best-effort).
    fn control(&mut self, node: usize, message: NodeControl);
}

/// The driver's inbound half: per-node event streams.
pub(crate) trait Transport: ControlSink {
    /// Non-blocking poll of node `node`'s events.
    fn try_event(&mut self, node: usize) -> Polled;
    /// Blocking poll with an upper bound, for the idle driver.
    fn event_timeout(&mut self, node: usize, timeout: Duration) -> Polled;
}

/// The in-process backend: one crossbeam channel pair per node.
pub(crate) struct ChannelTransport {
    /// Driver → node control mailboxes.
    pub control_tx: Vec<Sender<NodeControl>>,
    /// Node → driver gather streams (disconnect = crash).
    pub gather_rx: Vec<Receiver<RowMessage>>,
}

impl ControlSink for ChannelTransport {
    fn control(&mut self, node: usize, message: NodeControl) {
        let _ = self.control_tx[node].send(message);
    }
}

impl Transport for ChannelTransport {
    fn try_event(&mut self, node: usize) -> Polled {
        match self.gather_rx[node].try_recv() {
            Ok(msg) => Polled::Event(NodeEvent::Row(msg)),
            Err(TryRecvError::Empty) => Polled::Empty,
            Err(TryRecvError::Disconnected) => Polled::Down,
        }
    }

    fn event_timeout(&mut self, node: usize, timeout: Duration) -> Polled {
        match self.gather_rx[node].recv_timeout(timeout) {
            Ok(msg) => Polled::Event(NodeEvent::Row(msg)),
            Err(RecvTimeoutError::Timeout) => Polled::Empty,
            Err(RecvTimeoutError::Disconnected) => Polled::Down,
        }
    }
}

/// The node's view of the wire: its control inbox plus its outbound rows.
/// Implemented by the channel node ([`ChannelNodeIo`]) and the socket
/// worker (`crate::worker`), so the node loop in `cluster` is the single
/// copy of the protocol logic.
pub(crate) trait NodeIo {
    /// Non-blocking inbox poll; `Ok(None)` when empty.
    fn try_recv(&mut self) -> Result<Option<NodeControl>, Disconnected>;
    /// Blocking inbox read (implementations flush buffered rows first, so
    /// the driver is never starved while the node waits for it).
    fn recv(&mut self) -> Result<NodeControl, Disconnected>;
    /// Broadcasts a sealed hub row toward peer `peer` (directly on
    /// channels; via driver relay on sockets).
    fn send_hub(&mut self, peer: usize, msg: RowMessage);
    /// Streams a completed row to the driver (may buffer up to the
    /// configured batch).
    fn send_row(&mut self, msg: RowMessage);
    /// Forces buffered rows out.
    fn flush(&mut self);
}

/// The driver vanished (channel disconnected / socket EOF); the node
/// exits its loop.
pub(crate) struct Disconnected;

/// [`NodeIo`] over crossbeam channels (the in-process backend).
pub(crate) struct ChannelNodeIo {
    /// This node's id, to skip itself when broadcasting.
    pub k: usize,
    /// Control inbox.
    pub inbox: Receiver<NodeControl>,
    /// Every node's control mailbox (peer `k` delivers hub rows
    /// directly).
    pub peers: Vec<Sender<NodeControl>>,
    /// Gather stream to the driver.
    pub gather: Sender<RowMessage>,
}

impl NodeIo for ChannelNodeIo {
    fn try_recv(&mut self) -> Result<Option<NodeControl>, Disconnected> {
        match self.inbox.try_recv() {
            Ok(message) => Ok(Some(message)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(Disconnected),
        }
    }

    fn recv(&mut self) -> Result<NodeControl, Disconnected> {
        self.inbox.recv().map_err(|_| Disconnected)
    }

    fn send_hub(&mut self, peer: usize, msg: RowMessage) {
        debug_assert_ne!(peer, self.k, "a node never broadcasts to itself");
        // A disconnected peer (crashed) is not an error: hub rows are an
        // optimization.
        let _ = self.peers[peer].send(NodeControl::Hub(msg));
    }

    fn send_row(&mut self, msg: RowMessage) {
        // Channels are unbounded and in-process: no batching needed.
        let _ = self.gather.send(msg);
    }

    fn flush(&mut self) {}
}
