//! The per-node worker: private rows, a local modified-Dijkstra kernel,
//! and the hub-row mailbox.
//!
//! Unlike the shared-memory kernel in `parapsp-core`, a node is
//! single-threaded over its own memory, so everything here is safe code —
//! the distributed setting trades the publication protocol for explicit
//! messages. Every row that crosses the simulated wire carries an FNV-1a
//! checksum; receivers verify it and discard rows that fail, so a
//! corrupted payload can never poison the reuse pools or the gathered
//! matrix.

use std::collections::VecDeque;

use parapsp_core::relax::{relax_row, RelaxImpl};
use parapsp_graph::{CsrGraph, INF};
use parapsp_parfor::BitSet;

/// FNV-1a over the source id and the row payload. This is the very same
/// function the run ledger stamps on its records, so a row journaled by
/// the driver carries the checksum it was verified against on the wire.
pub(crate) use parapsp_core::persist::row_checksum;

/// A completed row in transit between nodes (or to the driver).
#[derive(Debug, Clone)]
pub(crate) struct RowMessage {
    /// Global source vertex of the row.
    pub source: u32,
    /// The full, final distance row of that source.
    pub row: Vec<u32>,
    /// FNV-1a checksum of `source` and `row`, computed by the sender
    /// before the payload touches the wire.
    pub checksum: u32,
}

impl RowMessage {
    /// Seals a row for transmission, stamping its checksum.
    pub(crate) fn new(source: u32, row: Vec<u32>) -> Self {
        let checksum = row_checksum(source, &row);
        RowMessage {
            source,
            row,
            checksum,
        }
    }

    /// Whether the payload still matches its checksum.
    pub(crate) fn verify(&self) -> bool {
        row_checksum(self.source, &self.row) == self.checksum
    }

    /// Bytes this message occupies on the simulated wire: source id,
    /// checksum, payload.
    pub(crate) fn wire_bytes(&self) -> u64 {
        8 + self.row.len() as u64 * 4
    }
}

/// Private per-node state: the rows this node owns plus whatever remote
/// hub rows have arrived.
pub(crate) struct NodeState {
    n: usize,
    /// Sources this node is responsible for, in assignment order.
    owned: Vec<u32>,
    /// `local_rows[i]` is the row of the i-th *owned* source (dense local
    /// indexing); `None` until computed.
    local_rows: Vec<Option<Vec<u32>>>,
    /// Maps a global vertex to its local row slot, or `u32::MAX`.
    local_slot: Vec<u32>,
    /// Remote rows received from other nodes, indexed by global source.
    remote_rows: Vec<Option<Vec<u32>>>,
    /// Scratch: SPFA queue and in-queue bitmap.
    queue: VecDeque<u32>,
    in_queue: BitSet,
    /// Local reuse counters (reported through `NodeStats`).
    pub(crate) local_reuses: u64,
    pub(crate) remote_reuses: u64,
    /// Received rows discarded for failing their checksum.
    pub(crate) rows_rejected: u64,
}

impl NodeState {
    pub(crate) fn new(n: usize, owned_sources: &[u32]) -> Self {
        let mut local_slot = vec![u32::MAX; n];
        for (slot, &s) in owned_sources.iter().enumerate() {
            local_slot[s as usize] = slot as u32;
        }
        NodeState {
            n,
            owned: owned_sources.to_vec(),
            local_rows: vec![None; owned_sources.len()],
            local_slot,
            remote_rows: vec![None; n],
            queue: VecDeque::new(),
            in_queue: BitSet::new(n),
            local_reuses: 0,
            remote_reuses: 0,
            rows_rejected: 0,
        }
    }

    /// Takes ownership of an additional source at runtime (recovery: the
    /// driver re-deals a crashed node's remaining work). No-op if the
    /// source is already owned.
    pub(crate) fn assign(&mut self, source: u32) {
        if self.local_slot[source as usize] != u32::MAX {
            return;
        }
        self.local_slot[source as usize] = self.local_rows.len() as u32;
        self.local_rows.push(None);
        self.owned.push(source);
    }

    /// Stores a received remote row after verifying its checksum; a
    /// corrupted row is counted and dropped.
    pub(crate) fn accept(&mut self, message: RowMessage) {
        debug_assert_eq!(message.row.len(), self.n);
        if !message.verify() {
            self.rows_rejected += 1;
            return;
        }
        self.remote_rows[message.source as usize] = Some(message.row);
    }

    /// The stored row of owned source `s`, if already computed (used to
    /// re-send a gather row the driver rejected).
    pub(crate) fn row_for(&self, s: u32) -> Option<&[u32]> {
        let slot = self.local_slot[s as usize];
        if slot == u32::MAX {
            return None;
        }
        self.local_rows[slot as usize].as_deref()
    }

    /// A completed row for `t`, if this node has one (own or remote).
    fn completed_row(&self, t: u32) -> Option<(&[u32], bool)> {
        let slot = self.local_slot[t as usize];
        if slot != u32::MAX {
            if let Some(row) = self.local_rows[slot as usize].as_deref() {
                return Some((row, true));
            }
        }
        self.remote_rows[t as usize]
            .as_deref()
            .map(|row| (row, false))
    }

    /// Runs the modified Dijkstra for owned source `s`, storing the row
    /// locally and returning a reference to it.
    pub(crate) fn run_source(&mut self, graph: &CsrGraph, s: u32) -> &[u32] {
        let n = self.n;
        let mut row = vec![INF; n];
        row[s as usize] = 0;
        // Local counters sidestep the borrow of `self` held by
        // `completed_row` inside the loop.
        let mut local_reuses = 0u64;
        let mut remote_reuses = 0u64;
        let relax_impl = RelaxImpl::Auto.resolve();
        self.queue.push_back(s);
        self.in_queue.set(s as usize);
        while let Some(t) = self.queue.pop_front() {
            self.in_queue.clear(t as usize);
            let dt = row[t as usize];
            if t != s {
                if let Some((t_row, local)) = self.completed_row(t) {
                    if local {
                        local_reuses += 1;
                    } else {
                        remote_reuses += 1;
                    }
                    relax_row(relax_impl, &mut row, t_row, dt, u32::MAX);
                    continue;
                }
            }
            for (v, w) in graph.out_edges(t) {
                let alt = dt.saturating_add(w);
                if alt < row[v as usize] {
                    row[v as usize] = alt;
                    if !self.in_queue.get(v as usize) {
                        self.queue.push_back(v);
                        self.in_queue.set(v as usize);
                    }
                }
            }
        }
        self.local_reuses += local_reuses;
        self.remote_reuses += remote_reuses;
        let slot = self.local_slot[s as usize];
        debug_assert_ne!(slot, u32::MAX, "run_source on a non-owned source");
        let slot = slot as usize;
        self.local_rows[slot] = Some(row);
        self.local_rows[slot].as_deref().expect("just stored")
    }

    /// Consumes the node, yielding `(global_source, row)` pairs for every
    /// *computed* owned source. The cluster driver streams rows instead;
    /// this stays for direct inspection in tests.
    #[cfg(test)]
    pub(crate) fn into_rows(self) -> Vec<(u32, Vec<u32>)> {
        self.owned
            .iter()
            .zip(self.local_rows)
            .filter_map(|(&s, row)| row.map(|row| (s, row)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::generate::path_graph;
    use parapsp_graph::Direction;

    #[test]
    fn single_node_computes_exact_rows() {
        let g = path_graph(5, Direction::Undirected);
        let owned: Vec<u32> = (0..5).collect();
        let mut node = NodeState::new(5, &owned);
        for s in 0..5u32 {
            node.run_source(&g, s);
        }
        let rows = node.into_rows();
        assert_eq!(rows.len(), 5);
        for (s, row) in rows {
            for v in 0..5u32 {
                assert_eq!(row[v as usize], s.abs_diff(v));
            }
        }
    }

    #[test]
    fn remote_rows_are_reused() {
        let g = parapsp_graph::generate::complete_graph(6);
        // Node owns only source 3; receives row of 0 from "elsewhere".
        let mut node = NodeState::new(6, &[3]);
        let mut remote = vec![1u32; 6];
        remote[0] = 0;
        node.accept(RowMessage::new(0, remote));
        node.run_source(&g, 3);
        assert_eq!(node.remote_reuses, 1);
        let rows = node.into_rows();
        assert_eq!(rows[0].1[0], 1);
        assert_eq!(rows[0].1[3], 0);
    }

    #[test]
    fn corrupted_remote_row_is_rejected_not_reused() {
        let g = parapsp_graph::generate::complete_graph(6);
        let mut node = NodeState::new(6, &[3]);
        let mut remote = vec![1u32; 6];
        remote[0] = 0;
        let mut message = RowMessage::new(0, remote);
        message.row[2] ^= 1 << 7; // in-flight bit flip
        node.accept(message);
        assert_eq!(node.rows_rejected, 1);
        node.run_source(&g, 3);
        assert_eq!(node.remote_reuses, 0, "rejected row must not be reused");
    }

    #[test]
    fn runtime_assignment_extends_ownership() {
        let g = path_graph(4, Direction::Undirected);
        let mut node = NodeState::new(4, &[0]);
        node.assign(2);
        node.assign(2); // idempotent
        node.run_source(&g, 0);
        node.run_source(&g, 2);
        assert_eq!(node.row_for(2), Some(&[2u32, 1, 0, 1][..]));
        let mut rows = node.into_rows();
        rows.sort_by_key(|&(s, _)| s);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].0, 2);
    }

    #[test]
    fn wire_bytes_counts_header_checksum_and_payload() {
        let m = RowMessage::new(1, vec![0; 10]);
        assert_eq!(m.wire_bytes(), 4 + 4 + 40);
    }

    #[test]
    fn checksum_detects_any_single_bit_flip_in_a_sample() {
        let row: Vec<u32> = (0..32u32)
            .map(|i| i.wrapping_mul(2654435761) % 1000)
            .collect();
        let clean = RowMessage::new(9, row);
        assert!(clean.verify());
        for word in 0..clean.row.len() {
            for bit in [0u32, 7, 13, 31] {
                let mut tampered = clean.clone();
                tampered.row[word] ^= 1 << bit;
                assert!(
                    !tampered.verify(),
                    "flip at word {word} bit {bit} went undetected"
                );
            }
        }
        let mut wrong_source = clean.clone();
        wrong_source.source = 10;
        assert!(!wrong_source.verify());
    }
}
