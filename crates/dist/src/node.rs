//! The per-node worker: private rows, a local modified-Dijkstra kernel,
//! and the hub-row mailbox.
//!
//! Unlike the shared-memory kernel in `parapsp-core`, a node is
//! single-threaded over its own memory, so everything here is safe code —
//! the distributed setting trades the publication protocol for explicit
//! messages.

use std::collections::VecDeque;

use parapsp_graph::{CsrGraph, INF};

/// A completed row received from another node.
#[derive(Debug, Clone)]
pub(crate) struct RowMessage {
    /// Global source vertex of the row.
    pub source: u32,
    /// The full, final distance row of that source.
    pub row: Vec<u32>,
}

impl RowMessage {
    /// Bytes this message occupies on the simulated wire.
    pub(crate) fn wire_bytes(&self) -> u64 {
        4 + self.row.len() as u64 * 4
    }
}

/// Private per-node state: the rows this node owns plus whatever remote
/// hub rows have arrived.
pub(crate) struct NodeState {
    n: usize,
    /// `local_rows[i]` is the row of the i-th *owned* source (dense local
    /// indexing); `None` until computed.
    local_rows: Vec<Option<Vec<u32>>>,
    /// Maps a global vertex to its local row slot, or `u32::MAX`.
    local_slot: Vec<u32>,
    /// Remote rows received from other nodes, indexed by global source.
    remote_rows: Vec<Option<Vec<u32>>>,
    /// Scratch: SPFA queue and in-queue bitmap.
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    /// Local reuse counters (reported through `NodeStats`).
    pub(crate) local_reuses: u64,
    pub(crate) remote_reuses: u64,
}

impl NodeState {
    pub(crate) fn new(n: usize, owned_sources: &[u32]) -> Self {
        let mut local_slot = vec![u32::MAX; n];
        for (slot, &s) in owned_sources.iter().enumerate() {
            local_slot[s as usize] = slot as u32;
        }
        NodeState {
            n,
            local_rows: vec![None; owned_sources.len()],
            local_slot,
            remote_rows: vec![None; n],
            queue: VecDeque::new(),
            in_queue: vec![false; n],
            local_reuses: 0,
            remote_reuses: 0,
        }
    }

    /// Stores a received remote row.
    pub(crate) fn accept(&mut self, message: RowMessage) {
        debug_assert_eq!(message.row.len(), self.n);
        self.remote_rows[message.source as usize] = Some(message.row);
    }

    /// A completed row for `t`, if this node has one (own or remote).
    fn completed_row(&self, t: u32) -> Option<(&[u32], bool)> {
        let slot = self.local_slot[t as usize];
        if slot != u32::MAX {
            if let Some(row) = self.local_rows[slot as usize].as_deref() {
                return Some((row, true));
            }
        }
        self.remote_rows[t as usize]
            .as_deref()
            .map(|row| (row, false))
    }

    /// Runs the modified Dijkstra for owned source `s`, storing the row
    /// locally and returning a reference to it.
    pub(crate) fn run_source(&mut self, graph: &CsrGraph, s: u32) -> &[u32] {
        let n = self.n;
        let mut row = vec![INF; n];
        row[s as usize] = 0;
        // Local counters sidestep the borrow of `self` held by
        // `completed_row` inside the loop.
        let mut local_reuses = 0u64;
        let mut remote_reuses = 0u64;
        self.queue.push_back(s);
        self.in_queue[s as usize] = true;
        while let Some(t) = self.queue.pop_front() {
            self.in_queue[t as usize] = false;
            let dt = row[t as usize];
            if t != s {
                if let Some((t_row, local)) = self.completed_row(t) {
                    if local {
                        local_reuses += 1;
                    } else {
                        remote_reuses += 1;
                    }
                    for (mine, &via_t) in row.iter_mut().zip(t_row) {
                        let alt = dt.saturating_add(via_t);
                        if alt < *mine {
                            *mine = alt;
                        }
                    }
                    continue;
                }
            }
            for (v, w) in graph.out_edges(t) {
                let alt = dt.saturating_add(w);
                if alt < row[v as usize] {
                    row[v as usize] = alt;
                    if !self.in_queue[v as usize] {
                        self.queue.push_back(v);
                        self.in_queue[v as usize] = true;
                    }
                }
            }
        }
        self.local_reuses += local_reuses;
        self.remote_reuses += remote_reuses;
        let slot = self.local_slot[s as usize];
        debug_assert_ne!(slot, u32::MAX, "run_source on a non-owned source");
        let slot = slot as usize;
        self.local_rows[slot] = Some(row);
        self.local_rows[slot].as_deref().expect("just stored")
    }

    /// Consumes the node, yielding `(global_source, row)` pairs for every
    /// owned source (the gather phase).
    pub(crate) fn into_rows(self, owned_sources: &[u32]) -> Vec<(u32, Vec<u32>)> {
        owned_sources
            .iter()
            .zip(self.local_rows)
            .map(|(&s, row)| (s, row.expect("all owned sources were run")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::generate::path_graph;
    use parapsp_graph::Direction;

    #[test]
    fn single_node_computes_exact_rows() {
        let g = path_graph(5, Direction::Undirected);
        let owned: Vec<u32> = (0..5).collect();
        let mut node = NodeState::new(5, &owned);
        for s in 0..5u32 {
            node.run_source(&g, s);
        }
        let rows = node.into_rows(&owned);
        for (s, row) in rows {
            for v in 0..5u32 {
                assert_eq!(row[v as usize], s.abs_diff(v));
            }
        }
    }

    #[test]
    fn remote_rows_are_reused() {
        let g = parapsp_graph::generate::complete_graph(6);
        // Node owns only source 3; receives row of 0 from "elsewhere".
        let mut node = NodeState::new(6, &[3]);
        let mut remote = vec![1u32; 6];
        remote[0] = 0;
        node.accept(RowMessage {
            source: 0,
            row: remote,
        });
        node.run_source(&g, 3);
        assert_eq!(node.remote_reuses, 1);
        let rows = node.into_rows(&[3]);
        assert_eq!(rows[0].1[0], 1);
        assert_eq!(rows[0].1[3], 0);
    }

    #[test]
    fn wire_bytes_counts_header_and_payload() {
        let m = RowMessage {
            source: 1,
            row: vec![0; 10],
        };
        assert_eq!(m.wire_bytes(), 4 + 40);
    }
}
