//! The socket worker: dials the driver, completes the handshake, and runs
//! the shared node loop over a framed stream.
//!
//! This is the entry point behind the `parapsp node` CLI subcommand, and
//! also what [`WorkerMode::Threads`](crate::transport::WorkerMode) runs
//! in-process — either way, every byte crosses a real socket, and the
//! compute loop is the very same [`run_node_loop`] the channel backend
//! uses, so deterministic fault injection behaves identically across
//! transports.

use std::io;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, TryRecvError};

use crate::cluster::{run_node_loop, NodeStats};
use crate::node::RowMessage;
use crate::socket::WireStream;
use crate::transport::{ConnectRetry, Disconnected, NodeControl, NodeIo};
use crate::wire::{read_frame, write_frame, Frame, WorkerSetup, PROTOCOL_VERSION};

/// Knobs for [`run_worker`]; everything else arrives in the Setup frame.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Dial retry/backoff toward the driver.
    pub connect: ConnectRetry,
    /// Artificial pause before each source computation. Zero in
    /// production; tests use it to make a worker predictably slow enough
    /// to be killed mid-run regardless of build profile.
    pub source_delay: Duration,
    /// Run identity `(run_id, epoch)` of the last Setup this worker
    /// accepted, echoed in Hello so a restarted driver can tell its own
    /// returning workers from strangers. `(0, 0)` means "fresh worker".
    pub session: (u64, u32),
    /// Bound on any single socket write toward the driver.
    pub write_timeout: Duration,
    /// Bound on each handshake read (Setup); post-handshake reads block
    /// indefinitely because liveness flows from the heartbeat writer.
    pub handshake_timeout: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            connect: ConnectRetry::default(),
            source_delay: Duration::ZERO,
            session: (0, 0),
            write_timeout: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// How a worker's run ended.
#[derive(Debug)]
pub enum WorkerOutcome {
    /// Ran to shutdown; the final stats were also shipped to the driver.
    Clean(NodeStats),
    /// A deterministic fault-plan crash fired: the socket was torn down
    /// abruptly, exactly like a process dying. (A real `kill -9` never
    /// returns at all, so this variant only covers *injected* crashes.)
    Crashed,
    /// The driver connection died before any Shutdown arrived — the
    /// driver crashed or was killed. The worker's run identity is
    /// returned so the caller can re-dial and prove, via Hello, that it
    /// belongs to the same run when a restarted driver answers.
    Lost {
        /// `(run_id, epoch)` of the Setup this worker was running under.
        session: (u64, u32),
    },
}

/// Deterministic backoff jitter (splitmix64 over `seed ^ attempt`): dial
/// timing is reproducible in tests but not synchronized across workers.
fn jitter_ms(seed: u64, attempt: u32, span_ms: u64) -> u64 {
    if span_ms == 0 {
        return 0;
    }
    let mut z = seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % span_ms
}

/// `host:port` dials TCP; anything else — a path separator, a leading
/// dot, or a bare filename like `apsp.sock` (no colon, so it cannot be a
/// TCP address) — dials a Unix socket.
fn dial(addr: &str) -> io::Result<WireStream> {
    #[cfg(unix)]
    if addr.contains('/') || addr.starts_with('.') || !addr.contains(':') {
        return UnixStream::connect(addr).map(WireStream::Unix);
    }
    TcpStream::connect(addr).map(WireStream::Tcp)
}

/// Dials with seeded exponential backoff. Returns the stream plus the
/// number of failed attempts that preceded it (the worker's reconnect
/// count).
fn dial_with_retry(addr: &str, retry: &ConnectRetry) -> Result<(WireStream, u32), String> {
    let mut last_error = String::from("no connection attempts were made");
    for attempt in 0..retry.attempts.max(1) {
        match dial(addr) {
            Ok(stream) => return Ok((stream, attempt)),
            Err(e) => last_error = e.to_string(),
        }
        let base_ms = retry.base.as_millis() as u64;
        let cap_ms = retry.cap.as_millis() as u64;
        let shift = attempt.min(16);
        let backoff = (base_ms << shift).min(cap_ms);
        let sleep = backoff + jitter_ms(retry.seed, attempt, base_ms.max(1));
        std::thread::sleep(Duration::from_millis(sleep));
    }
    Err(format!(
        "could not reach driver at {addr} after {} attempts: {last_error}",
        retry.attempts.max(1)
    ))
}

/// [`NodeIo`](crate::transport::NodeIo) over a framed socket: control
/// frames arrive via a reader thread; outbound rows batch up to
/// `row_batch` before a Rows frame is forced out; hub rows go through the
/// driver relay immediately.
struct SocketNodeIo {
    inbox: Receiver<NodeControl>,
    writer: Arc<Mutex<WireStream>>,
    batch: Vec<RowMessage>,
    row_batch: usize,
}

impl SocketNodeIo {
    fn write(&self, frame: &Frame) {
        // A failed write means the driver is gone; the reader thread will
        // drop the inbox and the node loop exits on its next recv.
        let mut writer = self.writer.lock().unwrap();
        let _ = write_frame(&mut *writer, frame);
    }
}

impl NodeIo for SocketNodeIo {
    fn try_recv(&mut self) -> Result<Option<NodeControl>, Disconnected> {
        match self.inbox.try_recv() {
            Ok(message) => Ok(Some(message)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(Disconnected),
        }
    }

    fn recv(&mut self) -> Result<NodeControl, Disconnected> {
        self.flush();
        self.inbox.recv().map_err(|_| Disconnected)
    }

    fn send_hub(&mut self, peer: usize, msg: RowMessage) {
        self.write(&Frame::HubFwd {
            to: peer as u32,
            msg,
        });
    }

    fn send_row(&mut self, msg: RowMessage) {
        self.batch.push(msg);
        if self.batch.len() >= self.row_batch.max(1) {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let rows = std::mem::take(&mut self.batch);
        self.write(&Frame::Rows(rows));
    }
}

/// Decodes driver control frames into the node's inbox until the stream
/// dies or the sender is dropped. `saw_shutdown` distinguishes an orderly
/// end-of-run from a driver that vanished mid-run (worth re-dialing).
fn control_reader(
    mut stream: WireStream,
    inbox: crossbeam::channel::Sender<NodeControl>,
    saw_shutdown: Arc<AtomicBool>,
) {
    loop {
        let control = match read_frame(&mut stream) {
            Ok(Frame::Hub(msg)) => NodeControl::Hub(msg),
            Ok(Frame::Assign(s)) => NodeControl::Assign(s),
            Ok(Frame::Resend(s)) => NodeControl::Resend(s),
            Ok(Frame::Shutdown) => {
                saw_shutdown.store(true, Ordering::Relaxed);
                NodeControl::Shutdown
            }
            Ok(Frame::Heartbeat) => continue,
            // Garbage or driver EOF: drop the inbox so the loop exits.
            Ok(_) | Err(_) => return,
        };
        if inbox.send(control).is_err() {
            return;
        }
    }
}

/// Connects to the driver at `addr`, handshakes, and runs the node loop
/// to completion. Blocks for the whole run.
///
/// Errors are dial/handshake failures; a completed run — even one ended
/// by an injected crash — is an `Ok` with the corresponding
/// [`WorkerOutcome`].
pub fn run_worker(addr: &str, options: WorkerOptions) -> Result<WorkerOutcome, String> {
    let (stream, reconnects) = dial_with_retry(addr, &options.connect)?;
    stream
        .set_write_timeout(Some(options.write_timeout))
        .map_err(|e| format!("setting the socket write timeout: {e}"))?;

    // Handshake: Hello -> Setup -> Ready. Reads are bounded so a wedged
    // driver cannot hang the worker forever.
    stream
        .set_read_timeout(Some(options.handshake_timeout))
        .map_err(|e| format!("setting the handshake read timeout: {e}"))?;
    let mut handshake_half = stream
        .try_clone()
        .map_err(|e| format!("cloning the socket: {e}"))?;
    write_frame(
        &mut handshake_half,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            reconnects,
            run_id: options.session.0,
            epoch: options.session.1,
        },
    )
    .map_err(|e| format!("sending Hello: {e}"))?;
    let setup: WorkerSetup = match read_frame(&mut handshake_half) {
        Ok(Frame::Setup(setup)) => *setup,
        Ok(other) => return Err(format!("expected Setup from the driver, got {other:?}")),
        Err(e) => return Err(format!("reading Setup: {e}")),
    };
    let session = (setup.run_id, setup.epoch);
    write_frame(&mut handshake_half, &Frame::Ready).map_err(|e| format!("sending Ready: {e}"))?;

    // Post-handshake, reads block indefinitely: liveness flows from the
    // heartbeat *writer* below, and the reader exits on driver EOF.
    stream
        .set_read_timeout(None)
        .map_err(|e| format!("clearing the read timeout: {e}"))?;

    let reader_half = stream
        .try_clone()
        .map_err(|e| format!("cloning the socket: {e}"))?;
    let (inbox_tx, inbox_rx) = unbounded();
    let saw_shutdown = Arc::new(AtomicBool::new(false));
    let reader = {
        let saw_shutdown = Arc::clone(&saw_shutdown);
        std::thread::spawn(move || control_reader(reader_half, inbox_tx, saw_shutdown))
    };

    let writer = Arc::new(Mutex::new(stream));

    // Keepalive: a dedicated thread writes a heartbeat frame every
    // interval, so the driver's silence budget never trips while this
    // worker grinds through a long SSSP.
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let interval = Duration::from_millis(setup.heartbeat_ms.max(1));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                {
                    let mut writer = writer.lock().unwrap();
                    if write_frame(&mut *writer, &Frame::Heartbeat).is_err() {
                        return; // driver gone; nothing left to keep alive
                    }
                }
                std::thread::sleep(interval);
            }
        })
    };

    let n = setup.graph.vertex_count();
    let mut is_hub = vec![false; n];
    for &h in &setup.hubs {
        if (h as usize) < n {
            is_hub[h as usize] = true;
        }
    }
    let mut io = SocketNodeIo {
        inbox: inbox_rx,
        writer: Arc::clone(&writer),
        batch: Vec::new(),
        row_batch: setup.row_batch as usize,
    };
    let mut stats = run_node_loop(
        setup.node_id as usize,
        &setup.graph,
        &setup.owned,
        &is_hub,
        setup.nodes as usize,
        &setup.faults,
        &setup.retry,
        None,
        options.source_delay,
        &mut io,
    );
    stats.reconnects = u64::from(reconnects);

    stop.store(true, Ordering::Relaxed);
    if stats.crashed {
        // Injected crash: die the way a killed process does — no flush,
        // no Stats, just a torn connection.
        writer.lock().unwrap().shutdown_both();
        let _ = heartbeat.join();
        let _ = reader.join();
        return Ok(WorkerOutcome::Crashed);
    }
    if !saw_shutdown.load(Ordering::Relaxed) {
        // The loop ended on a dead inbox, not a Shutdown: the driver is
        // gone. Tear down and report the session so the caller can
        // re-dial — a restarted driver will accept the Hello (same run,
        // older epoch) and re-deal whatever its ledger says is missing.
        writer.lock().unwrap().shutdown_both();
        let _ = heartbeat.join();
        let _ = reader.join();
        return Ok(WorkerOutcome::Lost { session });
    }

    io.flush();
    io.write(&Frame::Stats(stats));
    // An orderly goodbye: close our end so the driver's reader sees EOF
    // right after the Stats frame.
    writer.lock().unwrap().shutdown_both();
    let _ = heartbeat.join();
    let _ = reader.join();
    Ok(WorkerOutcome::Clean(stats))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    /// A bare filename like `apsp.sock` (relative path, no slash, no
    /// colon) must dial as a Unix socket, not parse as a TCP address —
    /// the README's `--listen apsp.sock` example depends on it.
    #[test]
    fn bare_socket_filenames_dial_unix_not_tcp() {
        for addr in ["definitely-missing.sock", "./also-missing.sock", "a/b.sock"] {
            let err = dial(addr).expect_err("nothing is listening");
            // Unix connect to a missing path is NotFound; a TCP parse
            // failure would be InvalidInput ("invalid socket address").
            assert_eq!(err.kind(), io::ErrorKind::NotFound, "addr {addr}: {err}");
        }
        let err = dial("127.0.0.1:1").expect_err("nothing listens on port 1");
        assert_ne!(
            err.kind(),
            io::ErrorKind::NotFound,
            "host:port must dial TCP"
        );
    }
}
