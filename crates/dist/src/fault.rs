//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] describes which faults a run should suffer: node
//! crashes (a node stops dead after completing its k-th source), dropped
//! hub broadcasts, and bit-flipped row payloads. Every decision is a pure
//! function of the plan's seed and the message coordinates (sender,
//! receiver, source, delivery attempt) — never of wall-clock time or
//! thread interleaving — so a given plan injects exactly the same faults
//! on every run. That is what makes the recovery invariant testable: the
//! driver must produce a bit-identical [`DistanceMatrix`] under any plan
//! that leaves at least one node alive.
//!
//! [`DistanceMatrix`]: parapsp_core::DistanceMatrix

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Address used for the driver in decision coordinates (the driver is not
/// a node, so no node index can collide with it).
pub(crate) const DRIVER: u64 = u64::MAX;

/// A reproducible schedule of faults for one [`DistEngine`] run.
///
/// The default plan injects nothing, so `FaultPlan::default()` preserves
/// the fault-free behaviour exactly.
///
/// ```
/// use parapsp_dist::FaultPlan;
///
/// let plan = FaultPlan::seeded(7)
///     .crash_node_after(1, 3)        // node 1 dies after its 3rd source
///     .with_drop_probability(0.2)    // 20% of hub broadcasts vanish
///     .with_corrupt_probability(0.1); // 10% of row payloads get a bit flip
/// assert!(!plan.is_inert());
/// assert_eq!(FaultPlan::default(), FaultPlan::seeded(0));
/// ```
///
/// [`DistEngine`]: crate::DistEngine
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<(usize, u64)>,
    stalls: Vec<(usize, u64, u64)>,
    drop_probability: f64,
    corrupt_probability: f64,
}

impl FaultPlan {
    /// A plan with no faults; the seed only matters once probabilities or
    /// crashes are added.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Crashes `node` immediately after it has completed `k` sources
    /// (`k = 0` crashes it before it computes anything). The crash is
    /// simulated by the node thread returning: its channels disconnect and
    /// it never speaks again.
    pub fn crash_node_after(mut self, node: usize, k: u64) -> Self {
        self.crashes.push((node, k));
        self
    }

    /// Stalls `node` for `millis` milliseconds once it has completed `k`
    /// sources: the node goes silent (no rows, no heartbeats) but does not
    /// die — the scenario a watchdog must distinguish from a crash. The
    /// node resumes normally after the stall.
    pub fn stall_node_after(mut self, node: usize, k: u64, millis: u64) -> Self {
        self.stalls.push((node, k, millis));
        self
    }

    /// Drops each hub broadcast independently with probability `p`.
    /// Dropped rows only cost reuse opportunity — exactness is unaffected.
    ///
    /// # Panics
    /// If `p` is outside `[0, 1]`.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} outside [0, 1]"
        );
        self.drop_probability = p;
        self
    }

    /// Flips one bit of each row payload independently with probability
    /// `q`, on hub broadcasts and gather rows alike. Corrupted rows fail
    /// their checksum at the receiver and are rejected; gather rows are
    /// then re-requested. `q` must stay below 1 or re-delivery could never
    /// succeed.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1)`.
    pub fn with_corrupt_probability(mut self, q: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&q),
            "corrupt probability {q} outside [0, 1)"
        );
        self.corrupt_probability = q;
        self
    }

    /// Whether this plan injects no faults at all.
    pub fn is_inert(&self) -> bool {
        self.crashes.is_empty()
            && self.stalls.is_empty()
            && self.drop_probability == 0.0
            && self.corrupt_probability == 0.0
    }

    /// The source count after which `node` crashes, if it is scheduled to.
    /// Multiple entries for one node collapse to the earliest crash.
    pub(crate) fn crash_after(&self, node: usize) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|&&(who, _)| who == node)
            .map(|&(_, k)| k)
            .min()
    }

    /// The `(after_k_sources, millis)` stall scheduled for `node`, if any.
    /// Multiple entries for one node collapse to the earliest stall.
    pub(crate) fn stall_after(&self, node: usize) -> Option<(u64, u64)> {
        self.stalls
            .iter()
            .filter(|&&(who, _, _)| who == node)
            .map(|&(_, k, ms)| (k, ms))
            .min()
    }

    /// Deterministic jitter in `[0, span]` milliseconds for retry backoff,
    /// keyed like every other decision so re-runs sleep identically.
    pub(crate) fn backoff_jitter_ms(&self, node: u64, source: u32, attempt: u64, span: u64) -> u64 {
        if span == 0 {
            return 0;
        }
        self.decision_rng(0x4241434B, node, u64::from(source), attempt)
            .random_range(0..=span)
    }

    /// Whether the broadcast of `source`'s row from `from` to `to` is lost.
    pub(crate) fn drops_broadcast(&self, from: u64, to: u64, source: u32) -> bool {
        self.drop_probability > 0.0
            && self
                .decision_rng(0x44524F50, from, to, u64::from(source))
                .random_bool(self.drop_probability)
    }

    /// Whether delivery `attempt` of `source`'s row from `from` to `to`
    /// arrives with a flipped bit.
    pub(crate) fn corrupts_payload(&self, from: u64, to: u64, source: u32, attempt: u64) -> bool {
        self.corrupt_probability > 0.0
            && self
                .decision_rng(0x464C4950, from, to, u64::from(source) ^ (attempt << 32))
                .random_bool(self.corrupt_probability)
    }

    /// Flips one deterministically chosen bit of `row` (the simulated
    /// transmission error behind [`corrupts_payload`](Self::corrupts_payload)).
    pub(crate) fn corrupt_row(
        &self,
        from: u64,
        to: u64,
        source: u32,
        attempt: u64,
        row: &mut [u32],
    ) {
        if row.is_empty() {
            return;
        }
        let mut rng = self.decision_rng(0x42495421, from, to, u64::from(source) ^ (attempt << 32));
        let word = rng.random_range(0..row.len());
        let bit = rng.random_range(0..32u32);
        row[word] ^= 1 << bit;
    }

    /// Serializes the plan for the socket transport's `SETUP` frame, so a
    /// worker process draws exactly the decisions an in-process node would.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.crashes.len() as u32).to_le_bytes());
        for &(node, k) in &self.crashes {
            out.extend_from_slice(&(node as u64).to_le_bytes());
            out.extend_from_slice(&k.to_le_bytes());
        }
        out.extend_from_slice(&(self.stalls.len() as u32).to_le_bytes());
        for &(node, k, ms) in &self.stalls {
            out.extend_from_slice(&(node as u64).to_le_bytes());
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&ms.to_le_bytes());
        }
        out.extend_from_slice(&self.drop_probability.to_bits().to_le_bytes());
        out.extend_from_slice(&self.corrupt_probability.to_bits().to_le_bytes());
    }

    /// Inverse of [`encode`](Self::encode); `None` on a malformed buffer.
    pub(crate) fn decode(buf: &mut &[u8]) -> Option<FaultPlan> {
        let seed = crate::wire::take_u64(buf)?;
        let crashes = (0..crate::wire::take_u32(buf)?)
            .map(|_| {
                Some((
                    usize::try_from(crate::wire::take_u64(buf)?).ok()?,
                    crate::wire::take_u64(buf)?,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        let stalls = (0..crate::wire::take_u32(buf)?)
            .map(|_| {
                Some((
                    usize::try_from(crate::wire::take_u64(buf)?).ok()?,
                    crate::wire::take_u64(buf)?,
                    crate::wire::take_u64(buf)?,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        let drop_probability = f64::from_bits(crate::wire::take_u64(buf)?);
        let corrupt_probability = f64::from_bits(crate::wire::take_u64(buf)?);
        if !(0.0..=1.0).contains(&drop_probability) || !(0.0..1.0).contains(&corrupt_probability) {
            return None;
        }
        Some(FaultPlan {
            seed,
            crashes,
            stalls,
            drop_probability,
            corrupt_probability,
        })
    }

    /// A fresh generator keyed on the plan seed plus the decision
    /// coordinates, mixed so that nearby coordinates do not correlate.
    fn decision_rng(&self, salt: u64, a: u64, b: u64, c: u64) -> StdRng {
        let mut key = self.seed ^ salt.rotate_left(32);
        for word in [a, b, c] {
            key ^= word.wrapping_add(0x9E37_79B9_7F4A_7C15);
            key = (key ^ (key >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            key = (key ^ (key >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            key ^= key >> 31;
        }
        StdRng::seed_from_u64(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_inert());
        assert_eq!(plan.crash_after(0), None);
        assert!(!plan.drops_broadcast(0, 1, 5));
        assert!(!plan.corrupts_payload(0, DRIVER, 5, 0));
    }

    #[test]
    fn decisions_are_reproducible_and_coordinate_sensitive() {
        let plan = FaultPlan::seeded(42).with_drop_probability(0.5);
        let again = FaultPlan::seeded(42).with_drop_probability(0.5);
        let mut differs = false;
        for source in 0..64u32 {
            assert_eq!(
                plan.drops_broadcast(0, 1, source),
                again.drops_broadcast(0, 1, source),
                "decision must be a pure function of plan + coordinates"
            );
            if plan.drops_broadcast(0, 1, source) != plan.drops_broadcast(1, 0, source) {
                differs = true;
            }
        }
        assert!(differs, "direction must enter the decision");
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::seeded(7).with_drop_probability(0.3);
        let dropped = (0..2000u32)
            .filter(|&s| plan.drops_broadcast(2, 3, s))
            .count();
        assert!(
            (450..750).contains(&dropped),
            "got {dropped} drops of 2000 at p=0.3"
        );
    }

    #[test]
    fn stalls_and_backoff_jitter_are_deterministic() {
        let plan = FaultPlan::seeded(9)
            .stall_node_after(1, 5, 200)
            .stall_node_after(1, 2, 100);
        assert!(!plan.is_inert());
        assert_eq!(plan.stall_after(1), Some((2, 100)), "earliest stall wins");
        assert_eq!(plan.stall_after(0), None);
        let again = FaultPlan::seeded(9);
        for attempt in 0..8u64 {
            let j = plan.backoff_jitter_ms(3, 17, attempt, 6);
            assert!(j <= 6);
            assert_eq!(j, again.backoff_jitter_ms(3, 17, attempt, 6));
        }
        assert_eq!(plan.backoff_jitter_ms(3, 17, 0, 0), 0);
    }

    #[test]
    fn earliest_crash_wins() {
        let plan = FaultPlan::seeded(1)
            .crash_node_after(2, 9)
            .crash_node_after(2, 4);
        assert_eq!(plan.crash_after(2), Some(4));
        assert_eq!(plan.crash_after(0), None);
    }

    #[test]
    fn corruption_flips_exactly_one_bit_deterministically() {
        let plan = FaultPlan::seeded(3).with_corrupt_probability(0.5);
        let clean = vec![5u32, 6, 7, 8];
        let mut a = clean.clone();
        let mut b = clean.clone();
        plan.corrupt_row(1, DRIVER, 9, 0, &mut a);
        plan.corrupt_row(1, DRIVER, 9, 0, &mut b);
        assert_eq!(a, b, "same coordinates must flip the same bit");
        let flipped: u32 = clean
            .iter()
            .zip(&a)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        let mut c = clean.clone();
        plan.corrupt_row(1, DRIVER, 9, 1, &mut c);
        assert_ne!(
            a, c,
            "different attempts should usually flip different bits"
        );
    }

    #[test]
    #[should_panic(expected = "corrupt probability")]
    fn certain_corruption_is_rejected() {
        let _ = FaultPlan::seeded(0).with_corrupt_probability(1.0);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn out_of_range_drop_probability_is_rejected() {
        let _ = FaultPlan::seeded(0).with_drop_probability(1.5);
    }
}
