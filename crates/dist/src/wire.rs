//! Length-prefix-framed wire protocol for the socket transport.
//!
//! Every frame is `[magic u8][kind u8][len u32 LE][payload; len]`. The
//! payload encoding is hand-rolled little-endian (no serialization
//! dependency), mirroring the checkpoint format in `parapsp-core`.
//! Row payloads keep the FNV-1a checksum computed by the *sender* — the
//! frame carries it verbatim so the receiver's verification sees exactly
//! what the sender sealed, and any in-flight corruption (injected or real)
//! is caught at the application layer on top of TCP's own checking.
//!
//! Framing errors (bad magic, unknown kind, oversized or truncated
//! payloads) surface as [`std::io::ErrorKind::InvalidData`]; a clean EOF
//! between frames surfaces as [`std::io::ErrorKind::UnexpectedEof`]. Both
//! are treated by the driver as the connection dying, which feeds the
//! ordinary crash re-deal path.

use std::io::{self, Read, Write};

use parapsp_graph::{CsrGraph, Direction};

use crate::cluster::{NodeStats, RetryPolicy};
use crate::fault::FaultPlan;
use crate::node::RowMessage;

/// First byte of every frame; anything else means a desynchronized or
/// foreign stream.
pub(crate) const MAGIC: u8 = 0xA5;

/// Bumped on any incompatible change to the frame layout; the driver
/// rejects workers announcing a different version during the handshake.
/// Version 2 added the run-id/epoch fields to `Hello` and `Setup` for
/// driver-restart re-handshakes.
pub(crate) const PROTOCOL_VERSION: u16 = 2;

/// Upper bound on a single frame payload (defense against a corrupt or
/// hostile length prefix allocating unbounded memory).
const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

const KIND_HELLO: u8 = 0x01;
const KIND_SETUP: u8 = 0x02;
const KIND_READY: u8 = 0x03;
const KIND_ROWS: u8 = 0x04;
const KIND_HUB_FWD: u8 = 0x05;
const KIND_HUB: u8 = 0x06;
const KIND_ASSIGN: u8 = 0x07;
const KIND_RESEND: u8 = 0x08;
const KIND_HEARTBEAT: u8 = 0x09;
const KIND_SHUTDOWN: u8 = 0x0A;
const KIND_STATS: u8 = 0x0B;

/// Everything the driver ships a worker at handshake time: identity,
/// pacing, the replicated graph, and the worker's share of the sources.
#[derive(Debug, Clone)]
pub(crate) struct WorkerSetup {
    /// This worker's node id (`0..nodes`).
    pub node_id: u32,
    /// Cluster size, for hub forwarding fan-out.
    pub nodes: u32,
    /// The driver's run identity (from the run ledger when one is
    /// configured, else minted fresh): a worker re-dialing after a driver
    /// restart proves it belongs to this run by echoing it in `Hello`.
    pub run_id: u64,
    /// The driver incarnation. A restarted driver bumps this, so frames
    /// from a worker still handshaking against the previous incarnation
    /// are rejected instead of mixing two generations of assignments.
    pub epoch: u32,
    /// Keepalive interval for the worker's heartbeat thread, ms.
    pub heartbeat_ms: u64,
    /// Rows per gather frame before a flush is forced.
    pub row_batch: u32,
    /// Re-send pacing, identical to the driver's.
    pub retry: RetryPolicy,
    /// Sources whose completed rows are broadcast cluster-wide.
    pub hubs: Vec<u32>,
    /// Sources this worker owns initially, in assignment order.
    pub owned: Vec<u32>,
    /// The deterministic fault plan (so injected faults draw the same
    /// decisions a simulated in-process node would).
    pub faults: FaultPlan,
    /// The replicated graph.
    pub graph: CsrGraph,
}

/// One protocol message.
#[derive(Debug, Clone)]
pub(crate) enum Frame {
    /// Worker → driver greeting: protocol version plus how many connect
    /// attempts were burned before this one succeeded.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u16,
        /// Connection attempts beyond the first (seeded-backoff retries).
        reconnects: u32,
        /// Run id of the last `Setup` this worker accepted, 0 when fresh.
        /// A driver rejects a worker carrying a *different* run's id.
        run_id: u64,
        /// Epoch of that `Setup`, meaningful only when `run_id != 0`. A
        /// driver rejects epochs *newer* than its own (a worker cannot
        /// have seen a future incarnation of this run); older epochs are
        /// simply re-setup.
        epoch: u32,
    },
    /// Driver → worker: the full job description.
    Setup(Box<WorkerSetup>),
    /// Worker → driver: setup accepted, entering the node loop.
    Ready,
    /// Worker → driver: a batch of completed gather rows.
    Rows(Vec<RowMessage>),
    /// Worker → driver: relay this hub row to peer `to` (the socket
    /// topology is a star, so peer traffic bounces off the driver).
    HubFwd {
        /// Destination node id.
        to: u32,
        /// The sealed row (faults already applied at the origin).
        msg: RowMessage,
    },
    /// Driver → worker: a hub row relayed from a peer.
    Hub(RowMessage),
    /// Driver → worker: take ownership of this source (crash/stall
    /// recovery, or a rejected row re-dealt away from its owner).
    Assign(u32),
    /// Driver → worker: the delivered copy of this row failed its
    /// checksum; back off and send a fresh one.
    Resend(u32),
    /// Worker → driver keepalive; carries no payload.
    Heartbeat,
    /// Driver → worker: all rows gathered, send stats and exit.
    Shutdown,
    /// Worker → driver: final [`NodeStats`], sent on clean shutdown only
    /// (a crashing worker dies silently — that is the point).
    Stats(NodeStats),
}

// ---- little-endian slice readers (shared with `fault::FaultPlan`) ----

pub(crate) fn take_u8(buf: &mut &[u8]) -> Option<u8> {
    let (&first, rest) = buf.split_first()?;
    *buf = rest;
    Some(first)
}

pub(crate) fn take_u16(buf: &mut &[u8]) -> Option<u16> {
    let (head, rest) = buf.split_first_chunk::<2>()?;
    *buf = rest;
    Some(u16::from_le_bytes(*head))
}

pub(crate) fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    let (head, rest) = buf.split_first_chunk::<4>()?;
    *buf = rest;
    Some(u32::from_le_bytes(*head))
}

pub(crate) fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    let (head, rest) = buf.split_first_chunk::<8>()?;
    *buf = rest;
    Some(u64::from_le_bytes(*head))
}

fn take_u32_vec(buf: &mut &[u8]) -> Option<Vec<u32>> {
    let count = take_u32(buf)? as usize;
    // checked_mul: on 32-bit targets a hostile count can overflow `count * 4`
    // to a small number and slip past the length guard.
    if buf.len() < count.checked_mul(4)? {
        return None;
    }
    (0..count).map(|_| take_u32(buf)).collect()
}

fn put_u32_vec(out: &mut Vec<u8>, values: &[u32]) {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_row(out: &mut Vec<u8>, msg: &RowMessage) {
    out.extend_from_slice(&msg.source.to_le_bytes());
    out.extend_from_slice(&msg.checksum.to_le_bytes());
    put_u32_vec(out, &msg.row);
}

fn take_row(buf: &mut &[u8]) -> Option<RowMessage> {
    let source = take_u32(buf)?;
    let checksum = take_u32(buf)?;
    let row = take_u32_vec(buf)?;
    Some(RowMessage {
        source,
        row,
        checksum,
    })
}

fn put_graph(out: &mut Vec<u8>, graph: &CsrGraph) {
    out.extend_from_slice(&(graph.vertex_count() as u64).to_le_bytes());
    out.push(match graph.direction() {
        Direction::Directed => 0,
        Direction::Undirected => 1,
    });
    let edges = graph.logical_edges();
    out.extend_from_slice(&(edges.len() as u64).to_le_bytes());
    for (u, v, w) in edges {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn take_graph(buf: &mut &[u8]) -> Option<CsrGraph> {
    let n = usize::try_from(take_u64(buf)?).ok()?;
    let direction = match take_u8(buf)? {
        0 => Direction::Directed,
        1 => Direction::Undirected,
        _ => return None,
    };
    let m = usize::try_from(take_u64(buf)?).ok()?;
    if buf.len() < m.checked_mul(12)? {
        return None;
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        edges.push((take_u32(buf)?, take_u32(buf)?, take_u32(buf)?));
    }
    CsrGraph::from_edges(n, direction, &edges).ok()
}

fn put_stats(out: &mut Vec<u8>, stats: &NodeStats) {
    for v in [
        stats.sources,
        stats.local_reuses,
        stats.remote_reuses,
        stats.bytes_sent,
        stats.bytes_received,
        stats.rows_rejected,
        stats.retries,
        stats.retry_backoff_ms,
        stats.reassigned_sources,
        stats.reconnects,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.push(u8::from(stats.crashed));
}

fn take_stats(buf: &mut &[u8]) -> Option<NodeStats> {
    Some(NodeStats {
        sources: take_u64(buf)?,
        local_reuses: take_u64(buf)?,
        remote_reuses: take_u64(buf)?,
        bytes_sent: take_u64(buf)?,
        bytes_received: take_u64(buf)?,
        rows_rejected: take_u64(buf)?,
        retries: take_u64(buf)?,
        retry_backoff_ms: take_u64(buf)?,
        reassigned_sources: take_u64(buf)?,
        reconnects: take_u64(buf)?,
        // Observed by the driver's reader thread, never transmitted.
        heartbeat_misses: 0,
        crashed: take_u8(buf)? != 0,
    })
}

impl Frame {
    fn encode_payload(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let kind = match self {
            Frame::Hello {
                version,
                reconnects,
                run_id,
                epoch,
            } => {
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&reconnects.to_le_bytes());
                out.extend_from_slice(&run_id.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                KIND_HELLO
            }
            Frame::Setup(setup) => {
                out.extend_from_slice(&setup.node_id.to_le_bytes());
                out.extend_from_slice(&setup.nodes.to_le_bytes());
                out.extend_from_slice(&setup.run_id.to_le_bytes());
                out.extend_from_slice(&setup.epoch.to_le_bytes());
                out.extend_from_slice(&setup.heartbeat_ms.to_le_bytes());
                out.extend_from_slice(&setup.row_batch.to_le_bytes());
                out.extend_from_slice(&setup.retry.max_resends.to_le_bytes());
                out.extend_from_slice(&setup.retry.base_ms.to_le_bytes());
                out.extend_from_slice(&setup.retry.cap_ms.to_le_bytes());
                put_u32_vec(&mut out, &setup.hubs);
                put_u32_vec(&mut out, &setup.owned);
                setup.faults.encode(&mut out);
                put_graph(&mut out, &setup.graph);
                KIND_SETUP
            }
            Frame::Ready => KIND_READY,
            Frame::Rows(rows) => {
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    put_row(&mut out, row);
                }
                KIND_ROWS
            }
            Frame::HubFwd { to, msg } => {
                out.extend_from_slice(&to.to_le_bytes());
                put_row(&mut out, msg);
                KIND_HUB_FWD
            }
            Frame::Hub(msg) => {
                put_row(&mut out, msg);
                KIND_HUB
            }
            Frame::Assign(s) => {
                out.extend_from_slice(&s.to_le_bytes());
                KIND_ASSIGN
            }
            Frame::Resend(s) => {
                out.extend_from_slice(&s.to_le_bytes());
                KIND_RESEND
            }
            Frame::Heartbeat => KIND_HEARTBEAT,
            Frame::Shutdown => KIND_SHUTDOWN,
            Frame::Stats(stats) => {
                put_stats(&mut out, stats);
                KIND_STATS
            }
        };
        (kind, out)
    }

    fn decode_payload(kind: u8, mut buf: &[u8]) -> Option<Frame> {
        let buf = &mut buf;
        let frame = match kind {
            KIND_HELLO => Frame::Hello {
                version: take_u16(buf)?,
                reconnects: take_u32(buf)?,
                run_id: take_u64(buf)?,
                epoch: take_u32(buf)?,
            },
            KIND_SETUP => Frame::Setup(Box::new(WorkerSetup {
                node_id: take_u32(buf)?,
                nodes: take_u32(buf)?,
                run_id: take_u64(buf)?,
                epoch: take_u32(buf)?,
                heartbeat_ms: take_u64(buf)?,
                row_batch: take_u32(buf)?,
                retry: RetryPolicy {
                    max_resends: take_u64(buf)?,
                    base_ms: take_u64(buf)?,
                    cap_ms: take_u64(buf)?,
                },
                hubs: take_u32_vec(buf)?,
                owned: take_u32_vec(buf)?,
                faults: FaultPlan::decode(buf)?,
                graph: take_graph(buf)?,
            })),
            KIND_READY => Frame::Ready,
            KIND_ROWS => {
                let count = take_u32(buf)? as usize;
                let mut rows = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    rows.push(take_row(buf)?);
                }
                Frame::Rows(rows)
            }
            KIND_HUB_FWD => Frame::HubFwd {
                to: take_u32(buf)?,
                msg: take_row(buf)?,
            },
            KIND_HUB => Frame::Hub(take_row(buf)?),
            KIND_ASSIGN => Frame::Assign(take_u32(buf)?),
            KIND_RESEND => Frame::Resend(take_u32(buf)?),
            KIND_HEARTBEAT => Frame::Heartbeat,
            KIND_SHUTDOWN => Frame::Shutdown,
            KIND_STATS => Frame::Stats(take_stats(buf)?),
            _ => return None,
        };
        if !buf.is_empty() {
            return None; // trailing garbage means a framing bug
        }
        Some(frame)
    }
}

/// Writes one frame. A single `write_all` keeps header and payload
/// contiguous, so a concurrent heartbeat thread sharing the writer (behind
/// a mutex) can never interleave inside a frame.
pub(crate) fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let (kind, payload) = frame.encode_payload();
    let mut bytes = Vec::with_capacity(6 + payload.len());
    bytes.push(MAGIC);
    bytes.push(kind);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&payload);
    w.write_all(&bytes)?;
    w.flush()
}

/// Reads one frame. EOF before the first header byte is
/// [`io::ErrorKind::UnexpectedEof`]; bad magic, unknown kinds, oversized
/// lengths, and short payloads are [`io::ErrorKind::InvalidData`].
pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; 6];
    r.read_exact(&mut header)?;
    if header[0] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame magic 0x{:02X}", header[0]),
        ));
    }
    let kind = header[1];
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Frame::decode_payload(kind, &payload).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed payload for frame kind 0x{kind:02X}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_graph::generate::{barabasi_albert, WeightSpec};

    fn roundtrip(frame: &Frame) -> Frame {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, frame).unwrap();
        let mut cursor = &bytes[..];
        let decoded = read_frame(&mut cursor).unwrap();
        assert!(cursor.is_empty(), "decoder must consume the whole frame");
        decoded
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        let row = RowMessage::new(7, vec![0, 3, 9, u32::MAX]);
        let stats = NodeStats {
            sources: 1,
            local_reuses: 2,
            remote_reuses: 3,
            bytes_sent: 4,
            bytes_received: 5,
            rows_rejected: 6,
            retries: 7,
            retry_backoff_ms: 8,
            reassigned_sources: 9,
            reconnects: 10,
            heartbeat_misses: 0,
            crashed: true,
        };
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                reconnects: 3,
                run_id: 0xDEAD_BEEF_CAFE_F00D,
                epoch: 2,
            },
            Frame::Ready,
            Frame::Rows(vec![row.clone(), RowMessage::new(1, vec![5; 4])]),
            Frame::HubFwd {
                to: 2,
                msg: row.clone(),
            },
            Frame::Hub(row.clone()),
            Frame::Assign(42),
            Frame::Resend(17),
            Frame::Heartbeat,
            Frame::Shutdown,
            Frame::Stats(stats),
        ];
        for frame in &frames {
            match (frame, roundtrip(frame)) {
                (
                    Frame::Hello {
                        version,
                        reconnects,
                        run_id,
                        epoch,
                    },
                    Frame::Hello {
                        version: v,
                        reconnects: r,
                        run_id: id,
                        epoch: e,
                    },
                ) => {
                    assert_eq!((*version, *reconnects, *run_id, *epoch), (v, r, id, e));
                }
                (Frame::Ready, Frame::Ready) => {}
                (Frame::Rows(a), Frame::Rows(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(
                            (x.source, x.checksum, &x.row),
                            (y.source, y.checksum, &y.row)
                        );
                    }
                }
                (Frame::HubFwd { to, msg }, Frame::HubFwd { to: t, msg: m }) => {
                    assert_eq!(*to, t);
                    assert_eq!((msg.source, &msg.row), (m.source, &m.row));
                }
                (Frame::Hub(a), Frame::Hub(b)) => assert_eq!(a.row, b.row),
                (Frame::Assign(a), Frame::Assign(b)) => assert_eq!(*a, b),
                (Frame::Resend(a), Frame::Resend(b)) => assert_eq!(*a, b),
                (Frame::Heartbeat, Frame::Heartbeat) => {}
                (Frame::Shutdown, Frame::Shutdown) => {}
                (Frame::Stats(a), Frame::Stats(b)) => {
                    assert_eq!(a.sources, b.sources);
                    assert_eq!(a.reconnects, b.reconnects);
                    assert_eq!(a.crashed, b.crashed);
                }
                (sent, got) => panic!("kind changed in flight: {sent:?} -> {got:?}"),
            }
        }
    }

    #[test]
    fn setup_roundtrips_with_graph_faults_and_shares() {
        let graph = barabasi_albert(60, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 5).unwrap();
        let setup = WorkerSetup {
            node_id: 2,
            nodes: 4,
            run_id: 0x1234_5678_9ABC_DEF0,
            epoch: 3,
            heartbeat_ms: 25,
            row_batch: 8,
            retry: RetryPolicy::default(),
            hubs: vec![3, 1, 4],
            owned: vec![2, 6, 10],
            faults: FaultPlan::seeded(9)
                .crash_node_after(1, 4)
                .stall_node_after(0, 2, 30)
                .with_drop_probability(0.25)
                .with_corrupt_probability(0.125),
            graph: graph.clone(),
        };
        let Frame::Setup(decoded) = roundtrip(&Frame::Setup(Box::new(setup.clone()))) else {
            panic!("setup decoded as a different kind");
        };
        assert_eq!(decoded.node_id, 2);
        assert_eq!(decoded.nodes, 4);
        assert_eq!(decoded.run_id, 0x1234_5678_9ABC_DEF0);
        assert_eq!(decoded.epoch, 3);
        assert_eq!(decoded.heartbeat_ms, 25);
        assert_eq!(decoded.row_batch, 8);
        assert_eq!(decoded.retry, setup.retry);
        assert_eq!(decoded.hubs, setup.hubs);
        assert_eq!(decoded.owned, setup.owned);
        assert_eq!(decoded.faults, setup.faults);
        assert_eq!(decoded.graph.vertex_count(), graph.vertex_count());
        assert_eq!(decoded.graph.direction(), graph.direction());
        // The rebuilt CSR must describe the same logical graph (adjacency
        // order may differ; distances cannot).
        let mut a = graph.logical_edges();
        let mut b = decoded.graph.logical_edges();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupted_row_checksum_survives_the_wire_verbatim() {
        let mut msg = RowMessage::new(3, vec![1, 2, 3]);
        msg.row[1] ^= 1 << 5; // sender-side injected bit flip
        assert!(!msg.verify());
        let Frame::Hub(decoded) = roundtrip(&Frame::Hub(msg)) else {
            panic!("hub decoded as a different kind");
        };
        assert!(!decoded.verify(), "the flip must still be detectable");
    }

    #[test]
    fn bad_magic_is_invalid_data() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Frame::Heartbeat).unwrap();
        bytes[0] = 0x00;
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_is_unexpected_eof() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Frame::Assign(9)).unwrap();
        for cut in 0..bytes.len() {
            let err = read_frame(&mut &bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn unknown_kind_and_trailing_garbage_are_rejected() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Frame::Heartbeat).unwrap();
        bytes[1] = 0x7F;
        assert_eq!(
            read_frame(&mut &bytes[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut padded = Vec::new();
        write_frame(&mut padded, &Frame::Assign(1)).unwrap();
        padded[2] = 8; // lengthen payload: 4 id bytes + 4 garbage
        padded.extend_from_slice(&[0xEE; 4]);
        assert_eq!(
            read_frame(&mut &padded[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = vec![MAGIC, KIND_ROWS];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut &bytes[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    // --- decoder fuzzing: arbitrary bytes must never panic ---

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Any byte stream fed to the frame reader either decodes or
            // returns a self-describing io::Error — never a panic, never
            // an unbounded allocation.
            #[test]
            fn arbitrary_bytes_never_panic_the_frame_reader(
                bytes in proptest::collection::vec(any::<u8>(), 0..512)
            ) {
                let mut cursor = &bytes[..];
                while !cursor.is_empty() {
                    match read_frame(&mut cursor) {
                        Ok(_) => {}
                        Err(err) => {
                            prop_assert!(matches!(
                                err.kind(),
                                io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                            ));
                            break;
                        }
                    }
                }
            }

            // Well-formed headers over garbage payloads: exercises every
            // payload decoder (the header fuzz above mostly dies on magic).
            #[test]
            fn garbage_payloads_behind_valid_headers_never_panic(
                kind in 0u8..=0x0C,
                payload in proptest::collection::vec(any::<u8>(), 0..256)
            ) {
                let mut bytes = vec![MAGIC, kind];
                bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                bytes.extend_from_slice(&payload);
                let _ = read_frame(&mut &bytes[..]);
            }

            // Flipping any single byte of a real frame either still
            // decodes (the flip hit a don't-care bit) or errors cleanly.
            #[test]
            fn single_byte_corruption_of_real_frames_never_panics(
                flip_at in 0usize..200,
                flip_bit in 0u8..8,
            ) {
                let frames = [
                    Frame::Hello { version: PROTOCOL_VERSION, reconnects: 1, run_id: 7, epoch: 1 },
                    Frame::Rows(vec![RowMessage::new(3, vec![1, 2, 3, 4])]),
                    Frame::Hub(RowMessage::new(0, vec![9; 8])),
                    Frame::Assign(11),
                    Frame::Stats(NodeStats::default()),
                ];
                for frame in &frames {
                    let mut bytes = Vec::new();
                    write_frame(&mut bytes, frame).unwrap();
                    if flip_at < bytes.len() {
                        bytes[flip_at] ^= 1 << flip_bit;
                    }
                    let _ = read_frame(&mut &bytes[..]);
                }
            }
        }
    }
}
