//! The cluster driver: source partitioning, hub broadcasting, gather.

use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

use parapsp_core::DistanceMatrix;
use parapsp_graph::{degree, CsrGraph};
use parapsp_order::OrderingProcedure;
use parapsp_parfor::ThreadPool;

use crate::node::{NodeState, RowMessage};

/// How sources are divided among the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourcePartition {
    /// Deal the global descending degree order cyclically: every node gets
    /// an equal share of hubs and processes them first (the distributed
    /// analogue of `schedule(static, 1)` over the degree order).
    #[default]
    CyclicByDegree,
    /// Contiguous blocks of the degree order: node 0 gets all the hubs.
    /// Deliberately bad — the distributed analogue of the paper's losing
    /// block-partitioning scheme in Fig. 1, kept for comparison.
    BlockByDegree,
    /// Cyclic by raw vertex id, ignoring degrees (no ordering benefit
    /// inside each node's local sweep).
    CyclicById,
}

/// Configuration of the simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of simulated distributed-memory nodes (each is one thread
    /// with private memory).
    pub nodes: usize,
    /// Fraction of sources (taken from the top of the degree order) whose
    /// completed rows are broadcast to all other nodes. `0.0` disables
    /// communication entirely; `1.0` broadcasts everything.
    pub hub_fraction: f64,
    /// Source-to-node assignment strategy.
    pub partition: SourcePartition,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            hub_fraction: 0.05,
            partition: SourcePartition::CyclicByDegree,
        }
    }
}

/// Per-node measurements of the simulated run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Sources this node computed.
    pub sources: u64,
    /// Row-reuse events against the node's own completed rows.
    pub local_reuses: u64,
    /// Row-reuse events against rows received from other nodes.
    pub remote_reuses: u64,
    /// Bytes sent broadcasting hub rows.
    pub bytes_sent: u64,
    /// Bytes received from other nodes' broadcasts.
    pub bytes_received: u64,
}

/// Result of a distributed run: the exact distance matrix plus per-node
/// communication statistics and the gather-phase volume.
#[derive(Debug)]
pub struct DistApspOutput {
    /// The exact all-pairs distance matrix (gathered on the "driver").
    pub dist: DistanceMatrix,
    /// One entry per simulated node.
    pub node_stats: Vec<NodeStats>,
    /// Bytes moved in the final gather of all rows to the driver.
    pub gather_bytes: u64,
    /// End-to-end wall time of the simulated run.
    pub elapsed: std::time::Duration,
}

impl DistApspOutput {
    /// Total broadcast traffic across the cluster (excludes the gather).
    pub fn total_broadcast_bytes(&self) -> u64 {
        self.node_stats.iter().map(|s| s.bytes_sent).sum()
    }
}

/// Runs the distributed-memory ParAPSP simulation.
///
/// The graph is replicated on every node (standard practice for
/// source-partitioned APSP: the O(n + m) structure is negligible next to
/// the O(n²/P) row share each node stores). Sources are dealt cyclically
/// along the global descending degree order; completed rows of the top
/// `hub_fraction` sources are broadcast.
///
/// ```
/// use parapsp_dist::{dist_apsp, ClusterConfig};
/// use parapsp_graph::generate::{barabasi_albert, WeightSpec};
///
/// let g = barabasi_albert(120, 3, WeightSpec::Unit, 1).unwrap();
/// let out = dist_apsp(&g, ClusterConfig { nodes: 3, hub_fraction: 0.1, ..ClusterConfig::default() });
/// assert_eq!(out.dist.get(0, 0), 0);
/// assert_eq!(out.node_stats.len(), 3);
/// ```
pub fn dist_apsp(graph: &CsrGraph, config: ClusterConfig) -> DistApspOutput {
    assert!(config.nodes > 0, "a cluster needs at least one node");
    assert!(
        (0.0..=1.0).contains(&config.hub_fraction),
        "hub fraction {} outside [0, 1]",
        config.hub_fraction
    );
    let n = graph.vertex_count();
    let nodes = config.nodes;
    let start = Instant::now();

    // Global preprocessing (the "driver" step of a real deployment): the
    // descending degree order, shared read-only by all nodes.
    let degrees = degree::out_degrees(graph);
    let order_pool = ThreadPool::new(1);
    let order = OrderingProcedure::multi_lists().compute(&degrees, &order_pool);

    // Hub set: the first `hub_fraction * n` sources of the order.
    let hub_count = ((n as f64) * config.hub_fraction).round() as usize;
    let mut is_hub = vec![false; n];
    for &s in order.iter().take(hub_count) {
        is_hub[s as usize] = true;
    }

    // Assign sources to nodes per the configured partition strategy.
    let owned: Vec<Vec<u32>> = match config.partition {
        SourcePartition::CyclicByDegree => (0..nodes)
            .map(|k| order.iter().skip(k).step_by(nodes).copied().collect())
            .collect(),
        SourcePartition::BlockByDegree => {
            let mut owned = vec![Vec::new(); nodes];
            let per_node = n.div_ceil(nodes.max(1)).max(1);
            for (i, &s) in order.iter().enumerate() {
                owned[(i / per_node).min(nodes - 1)].push(s);
            }
            owned
        }
        SourcePartition::CyclicById => (0..nodes)
            .map(|k| {
                (k as u32..n as u32)
                    .step_by(nodes)
                    .collect()
            })
            .collect(),
    };

    // One mailbox per node; every node holds senders to all *other* nodes.
    let mut senders: Vec<Sender<RowMessage>> = Vec::with_capacity(nodes);
    let mut receivers: Vec<Option<Receiver<RowMessage>>> = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let is_hub = &is_hub;
    let owned_ref = &owned;
    let senders_ref = &senders;
    let mut gathered: Vec<(u32, Vec<u32>)> = Vec::new();
    let mut node_stats = vec![NodeStats::default(); nodes];

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nodes)
            .map(|k| {
                let my_rx = receivers[k].take().expect("receiver taken once");
                scope.spawn(move || {
                    let my_sources = &owned_ref[k];
                    let mut state = NodeState::new(n, my_sources);
                    let mut stats = NodeStats::default();
                    for &s in my_sources {
                        // Opportunistically drain the mailbox before each
                        // SSSP so freshly arrived hub rows are usable.
                        while let Ok(message) = my_rx.try_recv() {
                            stats.bytes_received += message.wire_bytes();
                            state.accept(message);
                        }
                        let row = state.run_source(graph, s);
                        stats.sources += 1;
                        if is_hub[s as usize] {
                            for (peer, tx) in senders_ref.iter().enumerate() {
                                if peer == k {
                                    continue;
                                }
                                // The clone is the simulated network copy.
                                let message = RowMessage {
                                    source: s,
                                    row: row.to_vec(),
                                };
                                stats.bytes_sent += message.wire_bytes();
                                // A disconnected peer (already finished) is
                                // not an error: rows are an optimization.
                                let _ = tx.send(message);
                            }
                        }
                    }
                    stats.local_reuses = state.local_reuses;
                    stats.remote_reuses = state.remote_reuses;
                    let rows = state.into_rows(my_sources);
                    (k, rows, stats)
                })
            })
            .collect();
        for handle in handles {
            let (k, rows, stats) = handle.join().expect("node thread panicked");
            node_stats[k] = stats;
            gathered.extend(rows);
        }
    });
    drop(senders);

    // Gather phase: assemble the full matrix on the driver and account the
    // traffic (every row crosses the wire once).
    let mut dist = DistanceMatrix::new_infinite(n);
    let mut gather_bytes = 0u64;
    for (s, row) in gathered {
        gather_bytes += 4 + row.len() as u64 * 4;
        dist.copy_row_from(s, &row);
    }

    DistApspOutput {
        dist,
        node_stats,
        gather_bytes,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_core::baselines::apsp_dijkstra;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;

    #[test]
    fn exact_for_every_cluster_shape() {
        let g = barabasi_albert(160, 3, WeightSpec::Unit, 77).unwrap();
        let reference = apsp_dijkstra(&g);
        for nodes in [1usize, 2, 3, 8] {
            for hub_fraction in [0.0, 0.05, 0.5, 1.0] {
                let out = dist_apsp(
                    &g,
                    ClusterConfig {
                        nodes,
                        hub_fraction,
                        partition: Default::default(),
                    },
                );
                assert_eq!(
                    reference.first_difference(&out.dist),
                    None,
                    "nodes={nodes} hub={hub_fraction}"
                );
                assert_eq!(
                    out.node_stats.iter().map(|s| s.sources).sum::<u64>(),
                    160
                );
            }
        }
    }

    #[test]
    fn exact_on_weighted_directed_graph() {
        let g = erdos_renyi_gnm(
            120,
            700,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 30 },
            78,
        )
        .unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(&g, ClusterConfig::default());
        assert_eq!(reference.first_difference(&out.dist), None);
    }

    #[test]
    fn zero_hub_fraction_means_zero_broadcast_traffic() {
        let g = barabasi_albert(100, 3, WeightSpec::Unit, 79).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.0,
                partition: Default::default(),
            },
        );
        assert_eq!(out.total_broadcast_bytes(), 0);
        assert!(out.node_stats.iter().all(|s| s.remote_reuses == 0));
        // Gather still moves the whole matrix.
        assert_eq!(out.gather_bytes, 100 * (4 + 400));
    }

    #[test]
    fn hub_broadcast_costs_scale_with_fraction() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 80).unwrap();
        let small = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.05,
                partition: Default::default(),
            },
        );
        let large = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.5,
                partition: Default::default(),
            },
        );
        assert!(small.total_broadcast_bytes() > 0);
        assert!(large.total_broadcast_bytes() > small.total_broadcast_bytes());
    }

    #[test]
    fn single_node_cluster_equals_sequential() {
        let g = barabasi_albert(90, 2, WeightSpec::Unit, 81).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 1,
                hub_fraction: 0.1,
                partition: Default::default(),
            },
        );
        let reference = apsp_dijkstra(&g);
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.total_broadcast_bytes(), 0); // nobody to talk to
        assert!(out.node_stats[0].local_reuses > 0);
    }

    #[test]
    fn every_partition_strategy_is_exact_and_covers_all_sources() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 82).unwrap();
        let reference = apsp_dijkstra(&g);
        for partition in [
            SourcePartition::CyclicByDegree,
            SourcePartition::BlockByDegree,
            SourcePartition::CyclicById,
        ] {
            let out = dist_apsp(
                &g,
                ClusterConfig {
                    nodes: 4,
                    hub_fraction: 0.1,
                    partition,
                },
            );
            assert_eq!(
                reference.first_difference(&out.dist),
                None,
                "{partition:?}"
            );
            assert_eq!(
                out.node_stats.iter().map(|s| s.sources).sum::<u64>(),
                140,
                "{partition:?}"
            );
        }
    }

    #[test]
    fn degree_aware_partitions_reuse_more_than_degree_blind() {
        // Cyclic-by-degree lets every node see hub rows early; cyclic-by-id
        // does not order local sweeps at all, so it should do no better.
        let g = barabasi_albert(300, 4, WeightSpec::Unit, 83).unwrap();
        let run = |partition| {
            let out = dist_apsp(
                &g,
                ClusterConfig {
                    nodes: 4,
                    hub_fraction: 0.1,
                    partition,
                },
            );
            out.node_stats
                .iter()
                .map(|s| s.local_reuses + s.remote_reuses)
                .sum::<u64>()
        };
        let by_degree = run(SourcePartition::CyclicByDegree);
        let by_id = run(SourcePartition::CyclicById);
        // A structural smoke check rather than a strict inequality (timing
        // nondeterminism moves reuse between local and remote): both must
        // reuse substantially.
        assert!(by_degree > 0 && by_id > 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let g = barabasi_albert(10, 2, WeightSpec::Unit, 1).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 0,
                hub_fraction: 0.0,
                partition: Default::default(),
            },
        );
    }

    #[test]
    #[should_panic(expected = "hub fraction")]
    fn bad_hub_fraction_rejected() {
        let g = barabasi_albert(10, 2, WeightSpec::Unit, 1).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 2,
                hub_fraction: 1.5,
                partition: Default::default(),
            },
        );
    }
}
