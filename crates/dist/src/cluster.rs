//! The cluster driver: source partitioning, hub broadcasting, streaming
//! gather, and crash recovery.
//!
//! # Fault-tolerance protocol
//!
//! Nodes stream each completed row to the driver as soon as it is done
//! (instead of a single bulk gather at the end), so work finished before a
//! crash is never lost. Every row on the wire carries an FNV-1a checksum:
//!
//! * a corrupted **hub broadcast** is discarded by the receiving node
//!   (row reuse is an optimization, so nothing else is needed);
//! * a corrupted **gather row** makes the driver request a re-send from
//!   the node that still holds the clean row.
//!
//! A crash is a node thread returning early: its channels disconnect, and
//! the driver — which never blocks longer than [`ClusterConfig::heartbeat`]
//! on any one mailbox — observes the disconnect after draining whatever
//! the node managed to send. The crashed node's unfinished sources are then
//! re-dealt cyclically over the survivors, preserving their original
//! (degree-order) sequence. Because the kernel is exact regardless of
//! which rows happen to be available for reuse, the recovered matrix is
//! bit-identical to the fault-free one as long as one node survives.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use parapsp_core::engine::{
    Engine, Plan, RowsCtx, RowsOutcome, RunConfig, RunSummary, Runner, ValueEnum,
};
use parapsp_core::persist::Checkpoint;
use parapsp_core::{DistanceMatrix, RunOutcome, INF};
use parapsp_graph::{degree, CsrGraph};
use parapsp_order::OrderingProcedure;
use parapsp_parfor::{CancelStatus, CancelToken, ThreadPool};

use crate::fault::{FaultPlan, DRIVER};
use crate::node::{NodeState, RowMessage};

/// How sources are divided among the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourcePartition {
    /// Deal the global descending degree order cyclically: every node gets
    /// an equal share of hubs and processes them first (the distributed
    /// analogue of `schedule(static, 1)` over the degree order).
    #[default]
    CyclicByDegree,
    /// Contiguous blocks of the degree order: node 0 gets all the hubs.
    /// Deliberately bad — the distributed analogue of the paper's losing
    /// block-partitioning scheme in Fig. 1, kept for comparison.
    BlockByDegree,
    /// Cyclic by raw vertex id, ignoring degrees (no ordering benefit
    /// inside each node's local sweep).
    CyclicById,
}

impl ValueEnum for SourcePartition {
    fn value_variants() -> &'static [Self] {
        &[
            SourcePartition::CyclicByDegree,
            SourcePartition::BlockByDegree,
            SourcePartition::CyclicById,
        ]
    }

    fn value_name(&self) -> &'static str {
        match self {
            SourcePartition::CyclicByDegree => "cyclic-degree",
            SourcePartition::BlockByDegree => "block-degree",
            SourcePartition::CyclicById => "cyclic-id",
        }
    }
}

/// Bounds and pacing for gather-row re-delivery after a checksum failure.
///
/// Each rejected delivery of a source's row triggers a re-send from the
/// node that holds it, but only up to [`max_resends`](Self::max_resends)
/// times; after that the driver stops trusting the path and re-deals the
/// source to a *different* survivor instead. Before each re-send the node
/// backs off exponentially — `min(cap_ms, base_ms << (attempt - 1))` plus
/// a deterministic seeded jitter of up to `base_ms` — so a flaky path is
/// not hammered at full rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-sends allowed per source before the driver reassigns it to
    /// another node (`0` means reassign on the first rejection). When only
    /// one node is alive there is nobody else to deal to, so re-sends
    /// continue past the bound rather than deadlocking.
    pub max_resends: u64,
    /// Backoff before the first re-send, in milliseconds; doubles per
    /// attempt. Also the span of the added jitter.
    pub base_ms: u64,
    /// Upper bound on a single backoff sleep, in milliseconds (jitter
    /// excluded).
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_resends: 6,
            base_ms: 1,
            cap_ms: 8,
        }
    }
}

/// Driver-side stall detection for nodes that go silent without crashing.
///
/// The driver records the gap between consecutive gather rows from each
/// node. A node that still owes rows but has been silent for more than
/// `stall_factor ×` its rolling median gap (never less than `floor`) is
/// declared stalled: its ungathered sources are re-dealt to the other
/// survivors. The stalled node is *not* killed — if it wakes up its
/// deliveries are deduplicated by the driver, so a false positive costs
/// only duplicate work, never correctness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Multiple of the rolling median inter-row gap that counts as stalled.
    pub stall_factor: f64,
    /// Minimum recorded gaps before the median is trusted; below this the
    /// node is never declared stalled.
    pub min_samples: usize,
    /// Absolute lower bound on the stall threshold, so fast nodes with
    /// sub-millisecond medians are not flagged by scheduling noise.
    pub floor: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_factor: 8.0,
            min_samples: 2,
            floor: Duration::from_millis(25),
        }
    }
}

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated distributed-memory nodes (each is one thread
    /// with private memory).
    pub nodes: usize,
    /// Fraction of sources (taken from the top of the degree order) whose
    /// completed rows are broadcast to all other nodes. `0.0` disables
    /// communication entirely; `1.0` broadcasts everything.
    pub hub_fraction: f64,
    /// Source-to-node assignment strategy.
    pub partition: SourcePartition,
    /// Faults to inject; the default plan injects none.
    pub faults: FaultPlan,
    /// Upper bound on how long the driver blocks on any one node's mailbox
    /// before re-polling the cluster — the detection latency for crashes.
    pub heartbeat: Duration,
    /// Re-delivery bounds and backoff pacing for rejected gather rows.
    pub retry: RetryPolicy,
    /// Stall detection; `None` (the default) disables the watchdog, so a
    /// silent-but-alive node is simply waited on.
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            hub_fraction: 0.05,
            partition: SourcePartition::CyclicByDegree,
            faults: FaultPlan::default(),
            heartbeat: Duration::from_millis(10),
            retry: RetryPolicy::default(),
            watchdog: None,
        }
    }
}

/// Per-node measurements of the simulated run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Sources this node computed.
    pub sources: u64,
    /// Row-reuse events against the node's own completed rows.
    pub local_reuses: u64,
    /// Row-reuse events against rows received from other nodes.
    pub remote_reuses: u64,
    /// Bytes sent broadcasting hub rows (dropped messages included — the
    /// sender paid for them).
    pub bytes_sent: u64,
    /// Bytes received from other nodes' broadcasts.
    pub bytes_received: u64,
    /// Received hub rows discarded for failing their checksum.
    pub rows_rejected: u64,
    /// Gather rows re-sent after the driver rejected a corrupted copy.
    pub retries: u64,
    /// Total milliseconds this node slept in retry backoff (exponential
    /// delay plus seeded jitter) before re-sending rejected rows.
    pub retry_backoff_ms: u64,
    /// Sources taken over from crashed or stalled nodes.
    pub reassigned_sources: u64,
    /// Whether this node crashed (by fault injection) before finishing.
    pub crashed: bool,
}

/// Result of a distributed run: the exact distance matrix plus per-node
/// communication statistics and the gather-phase volume.
#[derive(Debug)]
pub struct DistApspOutput {
    /// The exact all-pairs distance matrix (gathered on the "driver").
    pub dist: DistanceMatrix,
    /// One entry per simulated node.
    pub node_stats: Vec<NodeStats>,
    /// Bytes moved streaming rows to the driver (rejected deliveries
    /// included — they crossed the wire too).
    pub gather_bytes: u64,
    /// Gather rows the driver rejected for failing their checksum.
    pub gather_rejected: u64,
    /// Sources the watchdog re-dealt away from silent-but-alive nodes.
    pub watchdog_reassigned: u64,
    /// End-to-end wall time of the simulated run.
    pub elapsed: std::time::Duration,
}

impl DistApspOutput {
    /// Total broadcast traffic across the cluster (excludes the gather).
    pub fn total_broadcast_bytes(&self) -> u64 {
        self.node_stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// How many nodes crashed during the run.
    pub fn crashed_nodes(&self) -> usize {
        self.node_stats.iter().filter(|s| s.crashed).count()
    }
}

/// The simulated-cluster driver as a [`Runner`]-drivable [`Engine`].
///
/// The whole distributed run — source partitioning, hub broadcasting,
/// streaming gather, crash recovery — is one indivisible work unit, so the
/// engine reports a single-unit plan and does not support periodic row
/// checkpoints ([`Engine::row_checkpoints`] is `false`). Cancellation still
/// works: the cluster driver polls the token every scheduling round, and a
/// stop yields a checkpoint of all gathered rows, resumable on any
/// shared-memory engine.
///
/// The cluster's own ordering is always MultiLists over the global degree
/// order (the distributed analogue of ParAPSP), so the [`RunConfig`]'s
/// ordering procedure and schedule are ignored; `max_distance` is honoured
/// as an exact post-filter on the gathered matrix.
#[derive(Debug)]
pub struct DistEngine {
    cluster: ClusterConfig,
    n: usize,
    cap: Option<u32>,
    result: Option<DistApspOutput>,
    stopped: Option<Checkpoint>,
}

impl DistEngine {
    /// An engine simulating the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        DistEngine {
            cluster,
            n: 0,
            cap: None,
            result: None,
            stopped: None,
        }
    }

    /// The simulated cluster's configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }
}

impl Engine for DistEngine {
    type Output = DistApspOutput;

    fn name(&self) -> &str {
        "DistCluster"
    }

    fn row_checkpoints(&self) -> bool {
        false
    }

    fn prepare(
        &mut self,
        graph: &CsrGraph,
        config: &RunConfig,
        _pool: &ThreadPool,
        resume: Option<Checkpoint>,
    ) -> Plan {
        assert!(
            resume.is_none(),
            "the distributed driver computes every row from scratch and cannot resume \
             a checkpoint; resume it on a shared-memory engine (e.g. ApspEngine) instead"
        );
        self.n = graph.vertex_count();
        self.cap = config.kernel().max_distance;
        // The whole cluster run is one unit; its internal ordering cost is
        // part of the simulation and not separable.
        Plan {
            units: vec![0],
            ordering: Duration::ZERO,
        }
    }

    fn run_rows(&mut self, graph: &CsrGraph, _units: &[u32], ctx: &RowsCtx<'_>) -> RowsOutcome {
        match run_cluster(graph, self.cluster.clone(), ctx.token) {
            RunOutcome::Complete(output) => {
                self.result = Some(output);
                CancelStatus::Continue
            }
            RunOutcome::Cancelled { checkpoint } => {
                self.stopped = Some(checkpoint);
                CancelStatus::Cancelled
            }
            RunOutcome::DeadlineExceeded { checkpoint } => {
                self.stopped = Some(checkpoint);
                CancelStatus::DeadlineExceeded
            }
        }
    }

    fn snapshot(&self) -> Checkpoint {
        match &self.stopped {
            Some(checkpoint) => checkpoint.clone(),
            None => Checkpoint::new(DistanceMatrix::new_infinite(self.n), vec![false; self.n]),
        }
    }

    fn finish(self, _graph: &CsrGraph, summary: RunSummary) -> DistApspOutput {
        let mut output = self.result.expect("run_rows() did not complete");
        if let Some(cap) = self.cap {
            let n = output.dist.n();
            let full = std::mem::replace(&mut output.dist, DistanceMatrix::new_infinite(0));
            let mut data = full.into_raw();
            for i in 0..n {
                for j in 0..n {
                    if i != j && data[i * n + j] > cap {
                        data[i * n + j] = INF;
                    }
                }
            }
            output.dist = DistanceMatrix::from_raw(n, data);
        }
        output.elapsed = summary.timings.total;
        output
    }
}

/// Everything a node can find in its mailbox.
enum NodeInbox {
    /// A hub row broadcast by a peer.
    Hub(RowMessage),
    /// The driver re-deals a crashed node's source to this node.
    Assign(u32),
    /// The driver received a corrupted copy of this source's row; send a
    /// fresh one.
    Resend(u32),
    /// All rows are gathered; exit.
    Shutdown,
}

/// Runs the distributed-memory ParAPSP simulation.
///
/// The graph is replicated on every node (standard practice for
/// source-partitioned APSP: the O(n + m) structure is negligible next to
/// the O(n²/P) row share each node stores). Sources are dealt cyclically
/// along the global descending degree order; completed rows of the top
/// `hub_fraction` sources are broadcast, and every completed row is
/// streamed to the driver immediately so crashes lose no finished work.
///
/// # Panics
///
/// Panics if the fault plan crashes every node: with no survivor there is
/// nobody left to take over the unfinished sources.
///
/// ```
/// use parapsp_dist::{dist_apsp, ClusterConfig};
/// use parapsp_graph::generate::{barabasi_albert, WeightSpec};
///
/// let g = barabasi_albert(120, 3, WeightSpec::Unit, 1).unwrap();
/// let out = dist_apsp(&g, ClusterConfig { nodes: 3, hub_fraction: 0.1, ..ClusterConfig::default() });
/// assert_eq!(out.dist.get(0, 0), 0);
/// assert_eq!(out.node_stats.len(), 3);
/// ```
///
/// **Deprecation notice.** This is a thin shim over
/// [`Runner`]`::run(`[`DistEngine`]`)` and will be removed after one
/// release; new code should construct the engine directly.
pub fn dist_apsp(graph: &CsrGraph, config: ClusterConfig) -> DistApspOutput {
    Runner::new(RunConfig::new(1)).run(DistEngine::new(config), graph)
}

/// Cancellable [`dist_apsp`]: the driver polls `token` on every scheduling
/// round and each node checks it between sources (an in-flight SSSP always
/// finishes, so no torn rows exist). On a stop the driver shuts the
/// cluster down, drains every row that was already on the wire, and
/// returns a checkpoint of all gathered rows — resume it on any engine
/// (e.g. [`parapsp_core::ParApsp::run_resumed`]) for a matrix
/// bit-identical to an uninterrupted run's.
///
/// **Deprecation notice.** This is a thin shim over
/// [`Runner`]`::run_with_token(`[`DistEngine`]`)` and will be removed
/// after one release; new code should construct the engine directly.
pub fn dist_apsp_cancellable(
    graph: &CsrGraph,
    config: ClusterConfig,
    token: &CancelToken,
) -> RunOutcome<DistApspOutput> {
    Runner::new(RunConfig::new(1)).run_with_token(DistEngine::new(config), graph, token)
}

fn run_cluster(
    graph: &CsrGraph,
    config: ClusterConfig,
    token: Option<&CancelToken>,
) -> RunOutcome<DistApspOutput> {
    assert!(config.nodes > 0, "a cluster needs at least one node");
    assert!(
        (0.0..=1.0).contains(&config.hub_fraction),
        "hub fraction {} outside [0, 1]",
        config.hub_fraction
    );
    let n = graph.vertex_count();
    let nodes = config.nodes;
    let start = Instant::now();

    // Global preprocessing (the "driver" step of a real deployment): the
    // descending degree order, shared read-only by all nodes.
    let degrees = degree::out_degrees(graph);
    let order_pool = ThreadPool::new(1);
    let order = OrderingProcedure::multi_lists().compute(&degrees, &order_pool);

    // Hub set: the first `hub_fraction * n` sources of the order.
    let hub_count = ((n as f64) * config.hub_fraction).round() as usize;
    let mut is_hub = vec![false; n];
    for &s in order.iter().take(hub_count) {
        is_hub[s as usize] = true;
    }

    // Assign sources to nodes per the configured partition strategy.
    let owned: Vec<Vec<u32>> = match config.partition {
        SourcePartition::CyclicByDegree => (0..nodes)
            .map(|k| order.iter().skip(k).step_by(nodes).copied().collect())
            .collect(),
        SourcePartition::BlockByDegree => {
            let mut owned = vec![Vec::new(); nodes];
            let per_node = n.div_ceil(nodes.max(1)).max(1);
            for (i, &s) in order.iter().enumerate() {
                owned[(i / per_node).min(nodes - 1)].push(s);
            }
            owned
        }
        SourcePartition::CyclicById => (0..nodes)
            .map(|k| (k as u32..n as u32).step_by(nodes).collect())
            .collect(),
    };

    // One mailbox per node (hub rows + driver control) and one gather
    // channel per node (so a disconnect identifies who crashed).
    let mut inbox_senders: Vec<Sender<NodeInbox>> = Vec::with_capacity(nodes);
    let mut inbox_receivers: Vec<Option<Receiver<NodeInbox>>> = Vec::with_capacity(nodes);
    let mut gather_senders: Vec<Option<Sender<RowMessage>>> = Vec::with_capacity(nodes);
    let mut gather_receivers: Vec<Receiver<RowMessage>> = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let (itx, irx) = unbounded();
        inbox_senders.push(itx);
        inbox_receivers.push(Some(irx));
        let (gtx, grx) = unbounded();
        gather_senders.push(Some(gtx));
        gather_receivers.push(grx);
    }

    let is_hub = &is_hub;
    let owned_ref = &owned;
    let inbox_senders_ref = &inbox_senders;
    let plan = &config.faults;
    let retry = &config.retry;
    let mut node_stats = vec![NodeStats::default(); nodes];
    let mut driver = Driver {
        nodes,
        inbox_tx: inbox_senders_ref,
        alive: vec![true; nodes],
        outstanding: owned.clone(),
        got: vec![false; n],
        gathered: 0,
        gather_bytes: 0,
        gather_rejected: 0,
        reassign_cursor: 0,
        retry: config.retry,
        reject_count: vec![0; n],
        watchdog_reassigned: 0,
        last_seen: vec![Instant::now(); nodes],
        gaps: vec![Vec::new(); nodes],
        dist: DistanceMatrix::new_infinite(n),
    };
    let mut stop = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nodes)
            .map(|k| {
                let inbox = inbox_receivers[k].take().expect("receiver taken once");
                let gather = gather_senders[k].take().expect("sender taken once");
                scope.spawn(move || {
                    (
                        k,
                        run_node(
                            k,
                            graph,
                            n,
                            &owned_ref[k],
                            is_hub,
                            plan,
                            retry,
                            token,
                            inbox,
                            inbox_senders_ref,
                            gather,
                        ),
                    )
                })
            })
            .collect();

        while driver.gathered < n {
            // Cooperative stop: the driver is the only poll()-er (nodes use
            // the non-consuming status()), so poll-budget cancellation in
            // tests trips after a deterministic number of driver rounds.
            if let Some(token) = token {
                let status = token.poll();
                if status.is_stop() {
                    stop = Some(status);
                    break;
                }
            }
            // Drain every alive node's gather stream; a disconnect here is
            // the crash signal (mpsc reports it only after the buffered
            // rows are consumed, so no finished work is lost).
            let mut progressed = false;
            for (k, gather) in gather_receivers.iter().enumerate() {
                if !driver.alive[k] {
                    continue;
                }
                loop {
                    match gather.try_recv() {
                        Ok(message) => {
                            driver.on_row(k, message);
                            progressed = true;
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            driver.on_crash(k);
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            if let Some(watchdog) = &config.watchdog {
                driver.check_watchdog(watchdog);
            }
            if driver.gathered >= n || progressed {
                continue;
            }
            // Nothing queued anywhere: block — but never unboundedly — on
            // a node that still owes rows, then re-poll the whole cluster.
            let watch = driver
                .watch_target()
                .expect("ungathered sources must have an alive owner");
            match gather_receivers[watch].recv_timeout(config.heartbeat) {
                Ok(message) => driver.on_row(watch, message),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => driver.on_crash(watch),
            }
        }

        for (k, inbox) in inbox_senders_ref.iter().enumerate() {
            if driver.alive[k] {
                let _ = inbox.send(NodeInbox::Shutdown);
            }
        }
        for handle in handles {
            let (k, stats) = handle.join().expect("node thread panicked");
            node_stats[k] = stats;
        }
    });

    if stop.is_some() {
        // Rows already on the wire when the stop hit are still sitting in
        // the (now disconnected) gather buffers; fold them in so the
        // checkpoint loses nothing that was finished.
        for (k, gather) in gather_receivers.iter().enumerate() {
            while let Ok(message) = gather.try_recv() {
                driver.on_row(k, message);
            }
        }
    }

    let got = driver.got;
    let output = DistApspOutput {
        dist: driver.dist,
        node_stats,
        gather_bytes: driver.gather_bytes,
        gather_rejected: driver.gather_rejected,
        watchdog_reassigned: driver.watchdog_reassigned,
        elapsed: start.elapsed(),
    };
    match stop {
        None => RunOutcome::Complete(output),
        Some(status) => RunOutcome::from_stop(status, Checkpoint::new(output.dist, got)),
    }
}

/// Driver-side bookkeeping for the streaming gather and crash recovery.
struct Driver<'a> {
    nodes: usize,
    inbox_tx: &'a [Sender<NodeInbox>],
    alive: Vec<bool>,
    /// Sources each node is currently responsible for, in assignment
    /// order; entries are filtered against `got` rather than removed.
    outstanding: Vec<Vec<u32>>,
    got: Vec<bool>,
    gathered: usize,
    gather_bytes: u64,
    gather_rejected: u64,
    /// Round-robin cursor for dealing crashed nodes' work to survivors.
    reassign_cursor: usize,
    retry: RetryPolicy,
    /// Rejected deliveries per source, for bounding re-sends.
    reject_count: Vec<u64>,
    watchdog_reassigned: u64,
    /// When each node last put anything on its gather wire (its liveness
    /// signal for the watchdog).
    last_seen: Vec<Instant>,
    /// Recent inter-row gaps per node, newest last, bounded window.
    gaps: Vec<Vec<Duration>>,
    dist: DistanceMatrix,
}

/// How many inter-row gaps the watchdog's rolling median looks back over.
const GAP_WINDOW: usize = 32;

impl Driver<'_> {
    /// Handles one gather message from node `k`.
    fn on_row(&mut self, k: usize, message: RowMessage) {
        let now = Instant::now();
        let gap = now.duration_since(self.last_seen[k]);
        self.last_seen[k] = now;
        if self.gaps[k].len() == GAP_WINDOW {
            self.gaps[k].remove(0);
        }
        self.gaps[k].push(gap);
        self.gather_bytes += message.wire_bytes();
        if !message.verify() {
            self.gather_rejected += 1;
            let s = message.source as usize;
            if !self.got[s] {
                self.reject_count[s] += 1;
                if self.reject_count[s] <= self.retry.max_resends
                    || !self.redeal_away_from(k, message.source)
                {
                    // Within the retry budget — or past it with nobody else
                    // alive to deal to, where re-sending (each attempt draws
                    // fresh fault coordinates) is the only road to progress.
                    let _ = self.inbox_tx[k].send(NodeInbox::Resend(message.source));
                }
            }
            return;
        }
        let s = message.source as usize;
        if self.got[s] {
            return;
        }
        self.got[s] = true;
        self.gathered += 1;
        self.dist.copy_row_from(message.source, &message.row);
    }

    /// Re-deals source `s` to an alive node other than `k` (the path that
    /// exhausted its retry budget). Returns `false` when `k` is the only
    /// survivor.
    fn redeal_away_from(&mut self, k: usize, s: u32) -> bool {
        let survivors: Vec<usize> = (0..self.nodes)
            .filter(|&j| self.alive[j] && j != k)
            .collect();
        if survivors.is_empty() {
            return false;
        }
        let j = survivors[self.reassign_cursor % survivors.len()];
        self.reassign_cursor += 1;
        self.outstanding[k].retain(|&x| x != s);
        self.outstanding[j].push(s);
        let _ = self.inbox_tx[j].send(NodeInbox::Assign(s));
        true
    }

    /// Declares nodes stalled when they owe rows but have been silent
    /// longer than `stall_factor ×` their rolling median inter-row gap
    /// (never less than `floor`), and re-deals their ungathered sources to
    /// the other survivors. A stalled node is left alive: late deliveries
    /// are deduplicated, so waking up costs nothing but duplicate work.
    fn check_watchdog(&mut self, watchdog: &WatchdogConfig) {
        for k in 0..self.nodes {
            if !self.alive[k] || self.gaps[k].len() < watchdog.min_samples {
                continue;
            }
            let owes: Vec<u32> = self.outstanding[k]
                .iter()
                .copied()
                .filter(|&s| !self.got[s as usize])
                .collect();
            if owes.is_empty() {
                continue;
            }
            let mut sorted = self.gaps[k].clone();
            sorted.sort();
            let median = sorted[sorted.len() / 2];
            let threshold = median.mul_f64(watchdog.stall_factor).max(watchdog.floor);
            if self.last_seen[k].elapsed() <= threshold {
                continue;
            }
            let survivors: Vec<usize> = (0..self.nodes)
                .filter(|&j| self.alive[j] && j != k)
                .collect();
            if survivors.is_empty() {
                continue; // nobody to take over; keep waiting
            }
            self.outstanding[k].clear();
            // Give the node a fresh full threshold before a second strike.
            self.last_seen[k] = Instant::now();
            for s in owes {
                let j = survivors[self.reassign_cursor % survivors.len()];
                self.reassign_cursor += 1;
                self.outstanding[j].push(s);
                self.watchdog_reassigned += 1;
                let _ = self.inbox_tx[j].send(NodeInbox::Assign(s));
            }
        }
    }

    /// Handles node `k`'s disconnect: re-deal its unfinished sources
    /// cyclically over the survivors, preserving their original order.
    fn on_crash(&mut self, k: usize) {
        self.alive[k] = false;
        let remaining: Vec<u32> = self.outstanding[k]
            .iter()
            .copied()
            .filter(|&s| !self.got[s as usize])
            .collect();
        self.outstanding[k].clear();
        if remaining.is_empty() {
            return;
        }
        let survivors: Vec<usize> = (0..self.nodes).filter(|&j| self.alive[j]).collect();
        assert!(
            !survivors.is_empty(),
            "all nodes crashed with {} sources unfinished — nothing left to recover on",
            remaining.len()
        );
        for s in remaining {
            let j = survivors[self.reassign_cursor % survivors.len()];
            self.reassign_cursor += 1;
            self.outstanding[j].push(s);
            let _ = self.inbox_tx[j].send(NodeInbox::Assign(s));
        }
    }

    /// An alive node that still owes rows (the one to block on).
    fn watch_target(&self) -> Option<usize> {
        (0..self.nodes)
            .find(|&k| self.alive[k] && self.outstanding[k].iter().any(|&s| !self.got[s as usize]))
    }
}

/// The body of one simulated node thread.
#[allow(clippy::too_many_arguments)]
fn run_node(
    k: usize,
    graph: &CsrGraph,
    n: usize,
    initial: &[u32],
    is_hub: &[bool],
    plan: &FaultPlan,
    retry: &RetryPolicy,
    token: Option<&CancelToken>,
    inbox: Receiver<NodeInbox>,
    peers: &[Sender<NodeInbox>],
    gather: Sender<RowMessage>,
) -> NodeStats {
    let crash_after = plan.crash_after(k);
    let stall = plan.stall_after(k);
    let mut stalled = false;
    let mut state = NodeState::new(n, initial);
    let mut pending: VecDeque<u32> = initial.iter().copied().collect();
    let mut stats = NodeStats::default();
    // Delivery attempt per source, so re-sends draw fresh fault decisions.
    let mut attempts = vec![0u64; n];
    let mut completed = 0u64;

    'life: loop {
        // Drain the mailbox so freshly arrived hub rows, assignments, and
        // re-send requests are handled before the next SSSP.
        loop {
            match inbox.try_recv() {
                Ok(message) => {
                    if handle_inbox(
                        message,
                        k,
                        plan,
                        retry,
                        &mut state,
                        &mut pending,
                        &mut stats,
                        &mut attempts,
                        &gather,
                    ) {
                        break 'life;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'life,
            }
        }
        // Injected crash: the thread simply returns; channels disconnect.
        if crash_after.is_some_and(|after| completed >= after) {
            stats.crashed = true;
            break;
        }
        // Injected stall: go silent without dying, then resume.
        if let Some((after, millis)) = stall {
            if !stalled && completed >= after {
                stalled = true;
                std::thread::sleep(Duration::from_millis(millis));
            }
        }
        // A tripped token parks the node: it stops starting sources (the
        // in-flight one, if any, already finished) and waits for the
        // driver's Shutdown instead of exiting — a unilateral exit would
        // look like a crash and trigger pointless reassignment.
        let parked = token.is_some_and(|t| t.status().is_stop());
        let Some(s) = (if parked { None } else { pending.pop_front() }) else {
            // Idle: wait for more work, a hub row, or shutdown.
            match inbox.recv() {
                Ok(message) => {
                    if handle_inbox(
                        message,
                        k,
                        plan,
                        retry,
                        &mut state,
                        &mut pending,
                        &mut stats,
                        &mut attempts,
                        &gather,
                    ) {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            }
        };
        if state.row_for(s).is_some() {
            continue; // already computed (defensive; assignments are unique)
        }
        let row = state.run_source(graph, s).to_vec();
        completed += 1;
        stats.sources += 1;
        if is_hub[s as usize] {
            for (peer, tx) in peers.iter().enumerate() {
                if peer == k {
                    continue;
                }
                // The clone is the simulated network copy; the sender pays
                // for the bytes whether or not the wire eats the message.
                let mut message = RowMessage::new(s, row.clone());
                stats.bytes_sent += message.wire_bytes();
                if plan.drops_broadcast(k as u64, peer as u64, s) {
                    continue;
                }
                if plan.corrupts_payload(k as u64, peer as u64, s, 0) {
                    plan.corrupt_row(k as u64, peer as u64, s, 0, &mut message.row);
                }
                // A disconnected peer (crashed) is not an error: hub rows
                // are an optimization.
                let _ = tx.send(NodeInbox::Hub(message));
            }
        }
        send_gather(k, s, &row, attempts[s as usize], plan, &gather);
    }

    stats.local_reuses = state.local_reuses;
    stats.remote_reuses = state.remote_reuses;
    stats.rows_rejected = state.rows_rejected;
    stats
}

/// Processes one mailbox message; returns `true` on shutdown.
#[allow(clippy::too_many_arguments)]
fn handle_inbox(
    message: NodeInbox,
    k: usize,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    state: &mut NodeState,
    pending: &mut VecDeque<u32>,
    stats: &mut NodeStats,
    attempts: &mut [u64],
    gather: &Sender<RowMessage>,
) -> bool {
    match message {
        NodeInbox::Hub(row) => {
            stats.bytes_received += row.wire_bytes();
            state.accept(row);
            false
        }
        NodeInbox::Assign(s) => {
            // A re-deal can cycle back to a node that already finished the
            // source (watchdog false positive, or a rejected delivery being
            // routed away and back). Re-deliver the finished row — dropping
            // the assignment instead would leave the driver waiting on a
            // row nobody intends to send.
            if let Some(row) = state.row_for(s) {
                let row = row.to_vec();
                attempts[s as usize] += 1;
                send_gather(k, s, &row, attempts[s as usize], plan, gather);
                return false;
            }
            if pending.contains(&s) {
                return false;
            }
            state.assign(s);
            pending.push_back(s);
            stats.reassigned_sources += 1;
            false
        }
        NodeInbox::Resend(s) => {
            stats.retries += 1;
            attempts[s as usize] += 1;
            let attempt = attempts[s as usize];
            // Exponential backoff with deterministic jitter before the
            // re-send, so a flaky path is not hammered at full rate.
            let exponential = retry
                .cap_ms
                .min(retry.base_ms.saturating_mul(1u64 << (attempt - 1).min(62)));
            let sleep_ms =
                exponential + plan.backoff_jitter_ms(k as u64, s, attempt, retry.base_ms);
            if sleep_ms > 0 {
                std::thread::sleep(Duration::from_millis(sleep_ms));
                stats.retry_backoff_ms += sleep_ms;
            }
            let row = state
                .row_for(s)
                .expect("driver requested a re-send of a row this node never sent")
                .to_vec();
            send_gather(k, s, &row, attempt, plan, gather);
            false
        }
        NodeInbox::Shutdown => true,
    }
}

/// Streams one completed row to the driver, applying payload faults.
fn send_gather(
    k: usize,
    s: u32,
    row: &[u32],
    attempt: u64,
    plan: &FaultPlan,
    gather: &Sender<RowMessage>,
) {
    let mut message = RowMessage::new(s, row.to_vec());
    if plan.corrupts_payload(k as u64, DRIVER, s, attempt) {
        plan.corrupt_row(k as u64, DRIVER, s, attempt, &mut message.row);
    }
    let _ = gather.send(message);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_core::baselines::apsp_dijkstra;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;

    #[test]
    fn exact_for_every_cluster_shape() {
        let g = barabasi_albert(160, 3, WeightSpec::Unit, 77).unwrap();
        let reference = apsp_dijkstra(&g);
        for nodes in [1usize, 2, 3, 8] {
            for hub_fraction in [0.0, 0.05, 0.5, 1.0] {
                let out = dist_apsp(
                    &g,
                    ClusterConfig {
                        nodes,
                        hub_fraction,
                        ..ClusterConfig::default()
                    },
                );
                assert_eq!(
                    reference.first_difference(&out.dist),
                    None,
                    "nodes={nodes} hub={hub_fraction}"
                );
                assert_eq!(out.node_stats.iter().map(|s| s.sources).sum::<u64>(), 160);
            }
        }
    }

    #[test]
    fn exact_on_weighted_directed_graph() {
        let g = erdos_renyi_gnm(
            120,
            700,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 30 },
            78,
        )
        .unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(&g, ClusterConfig::default());
        assert_eq!(reference.first_difference(&out.dist), None);
    }

    #[test]
    fn zero_hub_fraction_means_zero_broadcast_traffic() {
        let g = barabasi_albert(100, 3, WeightSpec::Unit, 79).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.0,
                ..ClusterConfig::default()
            },
        );
        assert_eq!(out.total_broadcast_bytes(), 0);
        assert!(out.node_stats.iter().all(|s| s.remote_reuses == 0));
        // The streaming gather still moves the whole matrix: per row a
        // source id, a checksum, and n distances.
        assert_eq!(out.gather_bytes, 100 * (4 + 4 + 400));
        assert_eq!(out.gather_rejected, 0);
    }

    #[test]
    fn hub_broadcast_costs_scale_with_fraction() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 80).unwrap();
        let small = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.05,
                ..ClusterConfig::default()
            },
        );
        let large = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.5,
                ..ClusterConfig::default()
            },
        );
        assert!(small.total_broadcast_bytes() > 0);
        assert!(large.total_broadcast_bytes() > small.total_broadcast_bytes());
    }

    #[test]
    fn single_node_cluster_equals_sequential() {
        let g = barabasi_albert(90, 2, WeightSpec::Unit, 81).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 1,
                hub_fraction: 0.1,
                ..ClusterConfig::default()
            },
        );
        let reference = apsp_dijkstra(&g);
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.total_broadcast_bytes(), 0); // nobody to talk to
        assert!(out.node_stats[0].local_reuses > 0);
    }

    #[test]
    fn every_partition_strategy_is_exact_and_covers_all_sources() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 82).unwrap();
        let reference = apsp_dijkstra(&g);
        for partition in [
            SourcePartition::CyclicByDegree,
            SourcePartition::BlockByDegree,
            SourcePartition::CyclicById,
        ] {
            let out = dist_apsp(
                &g,
                ClusterConfig {
                    nodes: 4,
                    hub_fraction: 0.1,
                    partition,
                    ..ClusterConfig::default()
                },
            );
            assert_eq!(reference.first_difference(&out.dist), None, "{partition:?}");
            assert_eq!(
                out.node_stats.iter().map(|s| s.sources).sum::<u64>(),
                140,
                "{partition:?}"
            );
        }
    }

    #[test]
    fn degree_aware_partitions_reuse_more_than_degree_blind() {
        // Cyclic-by-degree lets every node see hub rows early; cyclic-by-id
        // does not order local sweeps at all, so it should do no better.
        let g = barabasi_albert(300, 4, WeightSpec::Unit, 83).unwrap();
        let run = |partition| {
            let out = dist_apsp(
                &g,
                ClusterConfig {
                    nodes: 4,
                    hub_fraction: 0.1,
                    partition,
                    ..ClusterConfig::default()
                },
            );
            out.node_stats
                .iter()
                .map(|s| s.local_reuses + s.remote_reuses)
                .sum::<u64>()
        };
        let by_degree = run(SourcePartition::CyclicByDegree);
        let by_id = run(SourcePartition::CyclicById);
        // A structural smoke check rather than a strict inequality (timing
        // nondeterminism moves reuse between local and remote): both must
        // reuse substantially.
        assert!(by_degree > 0 && by_id > 0);
    }

    #[test]
    fn crashed_node_work_is_recovered_exactly() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 90).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.1,
                faults: FaultPlan::seeded(11).crash_node_after(2, 5),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.crashed_nodes(), 1);
        assert!(out.node_stats[2].crashed);
        assert_eq!(out.node_stats[2].sources, 5);
        let taken_over: u64 = out.node_stats.iter().map(|s| s.reassigned_sources).sum();
        // Node 2 owned ceil-ish 150/4 sources and finished 5 of them.
        assert_eq!(taken_over, 37 - 5);
        assert_eq!(
            out.node_stats.iter().map(|s| s.sources).sum::<u64>(),
            150,
            "every source must be computed exactly once"
        );
    }

    #[test]
    fn immediate_crash_and_cascading_crashes_are_survivable() {
        let g = barabasi_albert(120, 3, WeightSpec::Unit, 91).unwrap();
        let reference = apsp_dijkstra(&g);
        // Node 0 dies before computing anything; node 1 dies mid-recovery.
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 3,
                hub_fraction: 0.1,
                faults: FaultPlan::seeded(5)
                    .crash_node_after(0, 0)
                    .crash_node_after(1, 10),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.crashed_nodes(), 2);
        assert_eq!(out.node_stats[0].sources, 0);
    }

    #[test]
    fn dropped_broadcasts_cost_reuse_not_correctness() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 92).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.3,
                faults: FaultPlan::seeded(3).with_drop_probability(0.5),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        // Senders paid for every broadcast; receivers saw only about half.
        let sent = out.total_broadcast_bytes();
        let received: u64 = out.node_stats.iter().map(|s| s.bytes_received).sum();
        assert!(
            received < sent,
            "drops must shrink the received volume ({received} vs {sent})"
        );
    }

    #[test]
    fn corrupted_rows_are_rejected_and_retried_until_exact() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 93).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.3,
                faults: FaultPlan::seeded(8).with_corrupt_probability(0.3),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert!(
            out.gather_rejected > 0,
            "q=0.3 over 140 gather rows must reject some"
        );
        let retries: u64 = out.node_stats.iter().map(|s| s.retries).sum();
        assert_eq!(retries, out.gather_rejected);
    }

    #[test]
    fn combined_fault_storm_still_bit_identical() {
        let g = erdos_renyi_gnm(
            110,
            600,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 20 },
            94,
        )
        .unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.2,
                faults: FaultPlan::seeded(21)
                    .crash_node_after(1, 3)
                    .crash_node_after(3, 12)
                    .with_drop_probability(0.25)
                    .with_corrupt_probability(0.2),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.crashed_nodes(), 2);
    }

    #[test]
    fn retry_backoff_is_slept_and_accounted() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 93).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.3,
                faults: FaultPlan::seeded(8).with_corrupt_probability(0.3),
                ..ClusterConfig::default()
            },
        );
        let retries: u64 = out.node_stats.iter().map(|s| s.retries).sum();
        let backoff: u64 = out.node_stats.iter().map(|s| s.retry_backoff_ms).sum();
        assert!(retries > 0);
        // Every re-send sleeps at least base_ms = 1 (plus jitter), and no
        // single sleep exceeds cap_ms + base_ms.
        assert!(backoff >= retries, "{backoff}ms over {retries} retries");
        let policy = RetryPolicy::default();
        assert!(backoff <= retries * (policy.cap_ms + policy.base_ms));
    }

    #[test]
    fn exhausted_retry_budget_redeals_to_another_node() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 93).unwrap();
        let reference = apsp_dijkstra(&g);
        // max_resends = 0: the first rejection of any source immediately
        // re-deals it to a different node instead of asking for a re-send.
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.0,
                faults: FaultPlan::seeded(8).with_corrupt_probability(0.3),
                retry: RetryPolicy {
                    max_resends: 0,
                    base_ms: 0,
                    cap_ms: 0,
                },
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert!(out.gather_rejected > 0, "q=0.3 must reject some rows");
        let retries: u64 = out.node_stats.iter().map(|s| s.retries).sum();
        assert_eq!(retries, 0, "no re-sends allowed under max_resends = 0");
        let redealt: u64 = out.node_stats.iter().map(|s| s.reassigned_sources).sum();
        assert!(redealt > 0, "rejected sources must move to other nodes");
    }

    #[test]
    fn watchdog_redeals_a_stalled_nodes_sources() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 96).unwrap();
        let reference = apsp_dijkstra(&g);
        // Node 1 goes silent for 2 s after 2 sources — without a watchdog
        // the run would wait the stall out; with one it must finish long
        // before, on rows recomputed by the other nodes.
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 3,
                hub_fraction: 0.1,
                faults: FaultPlan::seeded(4).stall_node_after(1, 2, 2_000),
                watchdog: Some(WatchdogConfig {
                    floor: Duration::from_millis(20),
                    ..WatchdogConfig::default()
                }),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert!(
            out.watchdog_reassigned > 0,
            "the stalled node's sources must be re-dealt"
        );
        assert_eq!(out.crashed_nodes(), 0, "a stall is not a crash");
        // The run must not have waited out the 2 s stall to gather rows
        // (join at shutdown still waits for the sleeping thread, so allow
        // the stall itself plus scheduling slack but not a serial wait).
        assert!(
            out.elapsed < Duration::from_secs(4),
            "took {:?}",
            out.elapsed
        );
        let computed: u64 = out.node_stats.iter().map(|s| s.sources).sum();
        assert!(computed >= 150, "every source is computed at least once");
    }

    #[test]
    fn watchdog_stays_quiet_on_a_healthy_cluster() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 97).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.1,
                watchdog: Some(WatchdogConfig::default()),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(out.watchdog_reassigned, 0, "no stalls, no re-deals");
        assert_eq!(out.node_stats.iter().map(|s| s.sources).sum::<u64>(), 140);
    }

    #[test]
    fn untripped_token_completes_and_matches() {
        let g = barabasi_albert(120, 3, WeightSpec::Unit, 98).unwrap();
        let token = parapsp_parfor::CancelToken::new();
        let out = dist_apsp_cancellable(&g, ClusterConfig::default(), &token).unwrap_complete();
        assert_eq!(apsp_dijkstra(&g).first_difference(&out.dist), None);
    }

    #[test]
    fn cancelled_dist_run_checkpoints_and_resumes_bit_identically() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 99).unwrap();
        let reference = apsp_dijkstra(&g);
        for budget in [0u64, 3, 25] {
            let token = parapsp_parfor::CancelToken::with_poll_budget(budget);
            let outcome = dist_apsp_cancellable(&g, ClusterConfig::default(), &token);
            // Only the number of *driver rounds* before the trip is
            // deterministic — node threads keep producing rows until they
            // observe the trip, so on a loaded machine every row can be on
            // the wire before the budget runs out and the run legitimately
            // completes (the driver gathers n rows without a failed poll).
            let cp = match outcome {
                RunOutcome::Cancelled { checkpoint } => checkpoint,
                RunOutcome::Complete(out) if budget > 0 => {
                    assert_eq!(
                        reference.first_difference(&out.dist),
                        None,
                        "budget {budget}"
                    );
                    continue;
                }
                other => panic!("budget {budget} should cancel, got {other:?}"),
            };
            // Resume on the shared-memory engine: bit-identical finish.
            let resumed = parapsp_core::ParApsp::par_apsp(2).run_resumed(&g, cp);
            assert_eq!(
                reference.first_difference(&resumed.dist),
                None,
                "budget {budget}"
            );
        }
    }

    #[test]
    fn deadline_stops_a_distributed_run() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 100).unwrap();
        let token = parapsp_parfor::CancelToken::with_deadline(Duration::ZERO);
        let outcome = dist_apsp_cancellable(&g, ClusterConfig::default(), &token);
        match outcome {
            RunOutcome::DeadlineExceeded { checkpoint } => {
                assert_eq!(checkpoint.completed_count(), 0, "deadline hit on round 1");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "all nodes crashed")]
    fn crashing_every_node_is_fatal() {
        let g = barabasi_albert(60, 2, WeightSpec::Unit, 95).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 2,
                hub_fraction: 0.0,
                faults: FaultPlan::seeded(1)
                    .crash_node_after(0, 2)
                    .crash_node_after(1, 2),
                ..ClusterConfig::default()
            },
        );
    }

    #[test]
    fn dist_engine_runs_through_runner_with_cap_post_filter() {
        let g = barabasi_albert(120, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 44).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = Runner::new(RunConfig::new(1)).run(DistEngine::new(ClusterConfig::default()), &g);
        assert_eq!(reference.first_difference(&out.dist), None);
        // A capped run equals the exact matrix post-filtered at the cap.
        let cap = 3;
        let capped = Runner::new(RunConfig::new(1).with_max_distance(cap))
            .run(DistEngine::new(ClusterConfig::default()), &g);
        for u in 0..120u32 {
            for v in 0..120u32 {
                let exact = reference.get(u, v);
                let expected = if u != v && exact > cap { INF } else { exact };
                assert_eq!(capped.dist.get(u, v), expected, "({u}, {v})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot resume")]
    fn dist_engine_rejects_resume() {
        let g = barabasi_albert(40, 2, WeightSpec::Unit, 9).unwrap();
        let cp = Checkpoint::new(DistanceMatrix::new_infinite(40), vec![false; 40]);
        let _ = Runner::new(RunConfig::new(1)).run_resumed(
            DistEngine::new(ClusterConfig::default()),
            &g,
            cp,
        );
    }

    #[test]
    fn source_partition_parses_by_stable_name() {
        for partition in SourcePartition::value_variants() {
            assert_eq!(
                SourcePartition::parse_value(partition.value_name()).unwrap(),
                *partition
            );
        }
        let err = SourcePartition::parse_value("random").unwrap_err();
        assert!(err.contains("cyclic-degree") && err.contains("block-degree"));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let g = barabasi_albert(10, 2, WeightSpec::Unit, 1).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 0,
                hub_fraction: 0.0,
                ..ClusterConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "hub fraction")]
    fn bad_hub_fraction_rejected() {
        let g = barabasi_albert(10, 2, WeightSpec::Unit, 1).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 2,
                hub_fraction: 1.5,
                ..ClusterConfig::default()
            },
        );
    }
}
