//! The cluster driver: source partitioning, hub broadcasting, streaming
//! gather, and crash recovery.
//!
//! # Fault-tolerance protocol
//!
//! Nodes stream each completed row to the driver as soon as it is done
//! (instead of a single bulk gather at the end), so work finished before a
//! crash is never lost. Every row on the wire carries an FNV-1a checksum:
//!
//! * a corrupted **hub broadcast** is discarded by the receiving node
//!   (row reuse is an optimization, so nothing else is needed);
//! * a corrupted **gather row** makes the driver request a re-send from
//!   the node that still holds the clean row.
//!
//! A crash is a node thread returning early: its channels disconnect, and
//! the driver — which never blocks longer than [`ClusterConfig::heartbeat`]
//! on any one mailbox — observes the disconnect after draining whatever
//! the node managed to send. The crashed node's unfinished sources are then
//! re-dealt cyclically over the survivors, preserving their original
//! (degree-order) sequence. Because the kernel is exact regardless of
//! which rows happen to be available for reuse, the recovered matrix is
//! bit-identical to the fault-free one as long as one node survives.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use parapsp_core::DistanceMatrix;
use parapsp_graph::{degree, CsrGraph};
use parapsp_order::OrderingProcedure;
use parapsp_parfor::ThreadPool;

use crate::fault::{FaultPlan, DRIVER};
use crate::node::{NodeState, RowMessage};

/// How sources are divided among the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourcePartition {
    /// Deal the global descending degree order cyclically: every node gets
    /// an equal share of hubs and processes them first (the distributed
    /// analogue of `schedule(static, 1)` over the degree order).
    #[default]
    CyclicByDegree,
    /// Contiguous blocks of the degree order: node 0 gets all the hubs.
    /// Deliberately bad — the distributed analogue of the paper's losing
    /// block-partitioning scheme in Fig. 1, kept for comparison.
    BlockByDegree,
    /// Cyclic by raw vertex id, ignoring degrees (no ordering benefit
    /// inside each node's local sweep).
    CyclicById,
}

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated distributed-memory nodes (each is one thread
    /// with private memory).
    pub nodes: usize,
    /// Fraction of sources (taken from the top of the degree order) whose
    /// completed rows are broadcast to all other nodes. `0.0` disables
    /// communication entirely; `1.0` broadcasts everything.
    pub hub_fraction: f64,
    /// Source-to-node assignment strategy.
    pub partition: SourcePartition,
    /// Faults to inject; the default plan injects none.
    pub faults: FaultPlan,
    /// Upper bound on how long the driver blocks on any one node's mailbox
    /// before re-polling the cluster — the detection latency for crashes.
    pub heartbeat: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            hub_fraction: 0.05,
            partition: SourcePartition::CyclicByDegree,
            faults: FaultPlan::default(),
            heartbeat: Duration::from_millis(10),
        }
    }
}

/// Per-node measurements of the simulated run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Sources this node computed.
    pub sources: u64,
    /// Row-reuse events against the node's own completed rows.
    pub local_reuses: u64,
    /// Row-reuse events against rows received from other nodes.
    pub remote_reuses: u64,
    /// Bytes sent broadcasting hub rows (dropped messages included — the
    /// sender paid for them).
    pub bytes_sent: u64,
    /// Bytes received from other nodes' broadcasts.
    pub bytes_received: u64,
    /// Received hub rows discarded for failing their checksum.
    pub rows_rejected: u64,
    /// Gather rows re-sent after the driver rejected a corrupted copy.
    pub retries: u64,
    /// Sources taken over from crashed nodes.
    pub reassigned_sources: u64,
    /// Whether this node crashed (by fault injection) before finishing.
    pub crashed: bool,
}

/// Result of a distributed run: the exact distance matrix plus per-node
/// communication statistics and the gather-phase volume.
#[derive(Debug)]
pub struct DistApspOutput {
    /// The exact all-pairs distance matrix (gathered on the "driver").
    pub dist: DistanceMatrix,
    /// One entry per simulated node.
    pub node_stats: Vec<NodeStats>,
    /// Bytes moved streaming rows to the driver (rejected deliveries
    /// included — they crossed the wire too).
    pub gather_bytes: u64,
    /// Gather rows the driver rejected for failing their checksum.
    pub gather_rejected: u64,
    /// End-to-end wall time of the simulated run.
    pub elapsed: std::time::Duration,
}

impl DistApspOutput {
    /// Total broadcast traffic across the cluster (excludes the gather).
    pub fn total_broadcast_bytes(&self) -> u64 {
        self.node_stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// How many nodes crashed during the run.
    pub fn crashed_nodes(&self) -> usize {
        self.node_stats.iter().filter(|s| s.crashed).count()
    }
}

/// Everything a node can find in its mailbox.
enum NodeInbox {
    /// A hub row broadcast by a peer.
    Hub(RowMessage),
    /// The driver re-deals a crashed node's source to this node.
    Assign(u32),
    /// The driver received a corrupted copy of this source's row; send a
    /// fresh one.
    Resend(u32),
    /// All rows are gathered; exit.
    Shutdown,
}

/// Runs the distributed-memory ParAPSP simulation.
///
/// The graph is replicated on every node (standard practice for
/// source-partitioned APSP: the O(n + m) structure is negligible next to
/// the O(n²/P) row share each node stores). Sources are dealt cyclically
/// along the global descending degree order; completed rows of the top
/// `hub_fraction` sources are broadcast, and every completed row is
/// streamed to the driver immediately so crashes lose no finished work.
///
/// # Panics
///
/// Panics if the fault plan crashes every node: with no survivor there is
/// nobody left to take over the unfinished sources.
///
/// ```
/// use parapsp_dist::{dist_apsp, ClusterConfig};
/// use parapsp_graph::generate::{barabasi_albert, WeightSpec};
///
/// let g = barabasi_albert(120, 3, WeightSpec::Unit, 1).unwrap();
/// let out = dist_apsp(&g, ClusterConfig { nodes: 3, hub_fraction: 0.1, ..ClusterConfig::default() });
/// assert_eq!(out.dist.get(0, 0), 0);
/// assert_eq!(out.node_stats.len(), 3);
/// ```
pub fn dist_apsp(graph: &CsrGraph, config: ClusterConfig) -> DistApspOutput {
    assert!(config.nodes > 0, "a cluster needs at least one node");
    assert!(
        (0.0..=1.0).contains(&config.hub_fraction),
        "hub fraction {} outside [0, 1]",
        config.hub_fraction
    );
    let n = graph.vertex_count();
    let nodes = config.nodes;
    let start = Instant::now();

    // Global preprocessing (the "driver" step of a real deployment): the
    // descending degree order, shared read-only by all nodes.
    let degrees = degree::out_degrees(graph);
    let order_pool = ThreadPool::new(1);
    let order = OrderingProcedure::multi_lists().compute(&degrees, &order_pool);

    // Hub set: the first `hub_fraction * n` sources of the order.
    let hub_count = ((n as f64) * config.hub_fraction).round() as usize;
    let mut is_hub = vec![false; n];
    for &s in order.iter().take(hub_count) {
        is_hub[s as usize] = true;
    }

    // Assign sources to nodes per the configured partition strategy.
    let owned: Vec<Vec<u32>> = match config.partition {
        SourcePartition::CyclicByDegree => (0..nodes)
            .map(|k| order.iter().skip(k).step_by(nodes).copied().collect())
            .collect(),
        SourcePartition::BlockByDegree => {
            let mut owned = vec![Vec::new(); nodes];
            let per_node = n.div_ceil(nodes.max(1)).max(1);
            for (i, &s) in order.iter().enumerate() {
                owned[(i / per_node).min(nodes - 1)].push(s);
            }
            owned
        }
        SourcePartition::CyclicById => (0..nodes)
            .map(|k| (k as u32..n as u32).step_by(nodes).collect())
            .collect(),
    };

    // One mailbox per node (hub rows + driver control) and one gather
    // channel per node (so a disconnect identifies who crashed).
    let mut inbox_senders: Vec<Sender<NodeInbox>> = Vec::with_capacity(nodes);
    let mut inbox_receivers: Vec<Option<Receiver<NodeInbox>>> = Vec::with_capacity(nodes);
    let mut gather_senders: Vec<Option<Sender<RowMessage>>> = Vec::with_capacity(nodes);
    let mut gather_receivers: Vec<Receiver<RowMessage>> = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let (itx, irx) = unbounded();
        inbox_senders.push(itx);
        inbox_receivers.push(Some(irx));
        let (gtx, grx) = unbounded();
        gather_senders.push(Some(gtx));
        gather_receivers.push(grx);
    }

    let is_hub = &is_hub;
    let owned_ref = &owned;
    let inbox_senders_ref = &inbox_senders;
    let plan = &config.faults;
    let mut node_stats = vec![NodeStats::default(); nodes];
    let mut driver = Driver {
        nodes,
        inbox_tx: inbox_senders_ref,
        alive: vec![true; nodes],
        outstanding: owned.clone(),
        got: vec![false; n],
        gathered: 0,
        gather_bytes: 0,
        gather_rejected: 0,
        reassign_cursor: 0,
        dist: DistanceMatrix::new_infinite(n),
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nodes)
            .map(|k| {
                let inbox = inbox_receivers[k].take().expect("receiver taken once");
                let gather = gather_senders[k].take().expect("sender taken once");
                scope.spawn(move || {
                    (
                        k,
                        run_node(
                            k,
                            graph,
                            n,
                            &owned_ref[k],
                            is_hub,
                            plan,
                            inbox,
                            inbox_senders_ref,
                            gather,
                        ),
                    )
                })
            })
            .collect();

        while driver.gathered < n {
            // Drain every alive node's gather stream; a disconnect here is
            // the crash signal (mpsc reports it only after the buffered
            // rows are consumed, so no finished work is lost).
            let mut progressed = false;
            for (k, gather) in gather_receivers.iter().enumerate() {
                if !driver.alive[k] {
                    continue;
                }
                loop {
                    match gather.try_recv() {
                        Ok(message) => {
                            driver.on_row(k, message);
                            progressed = true;
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            driver.on_crash(k);
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            if driver.gathered >= n || progressed {
                continue;
            }
            // Nothing queued anywhere: block — but never unboundedly — on
            // a node that still owes rows, then re-poll the whole cluster.
            let watch = driver
                .watch_target()
                .expect("ungathered sources must have an alive owner");
            match gather_receivers[watch].recv_timeout(config.heartbeat) {
                Ok(message) => driver.on_row(watch, message),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => driver.on_crash(watch),
            }
        }

        for (k, inbox) in inbox_senders_ref.iter().enumerate() {
            if driver.alive[k] {
                let _ = inbox.send(NodeInbox::Shutdown);
            }
        }
        for handle in handles {
            let (k, stats) = handle.join().expect("node thread panicked");
            node_stats[k] = stats;
        }
    });

    DistApspOutput {
        dist: driver.dist,
        node_stats,
        gather_bytes: driver.gather_bytes,
        gather_rejected: driver.gather_rejected,
        elapsed: start.elapsed(),
    }
}

/// Driver-side bookkeeping for the streaming gather and crash recovery.
struct Driver<'a> {
    nodes: usize,
    inbox_tx: &'a [Sender<NodeInbox>],
    alive: Vec<bool>,
    /// Sources each node is currently responsible for, in assignment
    /// order; entries are filtered against `got` rather than removed.
    outstanding: Vec<Vec<u32>>,
    got: Vec<bool>,
    gathered: usize,
    gather_bytes: u64,
    gather_rejected: u64,
    /// Round-robin cursor for dealing crashed nodes' work to survivors.
    reassign_cursor: usize,
    dist: DistanceMatrix,
}

impl Driver<'_> {
    /// Handles one gather message from node `k`.
    fn on_row(&mut self, k: usize, message: RowMessage) {
        self.gather_bytes += message.wire_bytes();
        if !message.verify() {
            self.gather_rejected += 1;
            if !self.got[message.source as usize] {
                let _ = self.inbox_tx[k].send(NodeInbox::Resend(message.source));
            }
            return;
        }
        let s = message.source as usize;
        if self.got[s] {
            return;
        }
        self.got[s] = true;
        self.gathered += 1;
        self.dist.copy_row_from(message.source, &message.row);
    }

    /// Handles node `k`'s disconnect: re-deal its unfinished sources
    /// cyclically over the survivors, preserving their original order.
    fn on_crash(&mut self, k: usize) {
        self.alive[k] = false;
        let remaining: Vec<u32> = self.outstanding[k]
            .iter()
            .copied()
            .filter(|&s| !self.got[s as usize])
            .collect();
        self.outstanding[k].clear();
        if remaining.is_empty() {
            return;
        }
        let survivors: Vec<usize> = (0..self.nodes).filter(|&j| self.alive[j]).collect();
        assert!(
            !survivors.is_empty(),
            "all nodes crashed with {} sources unfinished — nothing left to recover on",
            remaining.len()
        );
        for s in remaining {
            let j = survivors[self.reassign_cursor % survivors.len()];
            self.reassign_cursor += 1;
            self.outstanding[j].push(s);
            let _ = self.inbox_tx[j].send(NodeInbox::Assign(s));
        }
    }

    /// An alive node that still owes rows (the one to block on).
    fn watch_target(&self) -> Option<usize> {
        (0..self.nodes)
            .find(|&k| self.alive[k] && self.outstanding[k].iter().any(|&s| !self.got[s as usize]))
    }
}

/// The body of one simulated node thread.
#[allow(clippy::too_many_arguments)]
fn run_node(
    k: usize,
    graph: &CsrGraph,
    n: usize,
    initial: &[u32],
    is_hub: &[bool],
    plan: &FaultPlan,
    inbox: Receiver<NodeInbox>,
    peers: &[Sender<NodeInbox>],
    gather: Sender<RowMessage>,
) -> NodeStats {
    let crash_after = plan.crash_after(k);
    let mut state = NodeState::new(n, initial);
    let mut pending: VecDeque<u32> = initial.iter().copied().collect();
    let mut stats = NodeStats::default();
    // Delivery attempt per source, so re-sends draw fresh fault decisions.
    let mut attempts = vec![0u64; n];
    let mut completed = 0u64;

    'life: loop {
        // Drain the mailbox so freshly arrived hub rows, assignments, and
        // re-send requests are handled before the next SSSP.
        loop {
            match inbox.try_recv() {
                Ok(message) => {
                    if handle_inbox(
                        message,
                        k,
                        plan,
                        &mut state,
                        &mut pending,
                        &mut stats,
                        &mut attempts,
                        &gather,
                    ) {
                        break 'life;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'life,
            }
        }
        // Injected crash: the thread simply returns; channels disconnect.
        if crash_after.is_some_and(|after| completed >= after) {
            stats.crashed = true;
            break;
        }
        let Some(s) = pending.pop_front() else {
            // Idle: wait for more work, a hub row, or shutdown.
            match inbox.recv() {
                Ok(message) => {
                    if handle_inbox(
                        message,
                        k,
                        plan,
                        &mut state,
                        &mut pending,
                        &mut stats,
                        &mut attempts,
                        &gather,
                    ) {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            }
        };
        if state.row_for(s).is_some() {
            continue; // already computed (defensive; assignments are unique)
        }
        let row = state.run_source(graph, s).to_vec();
        completed += 1;
        stats.sources += 1;
        if is_hub[s as usize] {
            for (peer, tx) in peers.iter().enumerate() {
                if peer == k {
                    continue;
                }
                // The clone is the simulated network copy; the sender pays
                // for the bytes whether or not the wire eats the message.
                let mut message = RowMessage::new(s, row.clone());
                stats.bytes_sent += message.wire_bytes();
                if plan.drops_broadcast(k as u64, peer as u64, s) {
                    continue;
                }
                if plan.corrupts_payload(k as u64, peer as u64, s, 0) {
                    plan.corrupt_row(k as u64, peer as u64, s, 0, &mut message.row);
                }
                // A disconnected peer (crashed) is not an error: hub rows
                // are an optimization.
                let _ = tx.send(NodeInbox::Hub(message));
            }
        }
        send_gather(k, s, &row, attempts[s as usize], plan, &gather);
    }

    stats.local_reuses = state.local_reuses;
    stats.remote_reuses = state.remote_reuses;
    stats.rows_rejected = state.rows_rejected;
    stats
}

/// Processes one mailbox message; returns `true` on shutdown.
#[allow(clippy::too_many_arguments)]
fn handle_inbox(
    message: NodeInbox,
    k: usize,
    plan: &FaultPlan,
    state: &mut NodeState,
    pending: &mut VecDeque<u32>,
    stats: &mut NodeStats,
    attempts: &mut [u64],
    gather: &Sender<RowMessage>,
) -> bool {
    match message {
        NodeInbox::Hub(row) => {
            stats.bytes_received += row.wire_bytes();
            state.accept(row);
            false
        }
        NodeInbox::Assign(s) => {
            state.assign(s);
            pending.push_back(s);
            stats.reassigned_sources += 1;
            false
        }
        NodeInbox::Resend(s) => {
            stats.retries += 1;
            attempts[s as usize] += 1;
            let row = state
                .row_for(s)
                .expect("driver requested a re-send of a row this node never sent")
                .to_vec();
            send_gather(k, s, &row, attempts[s as usize], plan, gather);
            false
        }
        NodeInbox::Shutdown => true,
    }
}

/// Streams one completed row to the driver, applying payload faults.
fn send_gather(
    k: usize,
    s: u32,
    row: &[u32],
    attempt: u64,
    plan: &FaultPlan,
    gather: &Sender<RowMessage>,
) {
    let mut message = RowMessage::new(s, row.to_vec());
    if plan.corrupts_payload(k as u64, DRIVER, s, attempt) {
        plan.corrupt_row(k as u64, DRIVER, s, attempt, &mut message.row);
    }
    let _ = gather.send(message);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_core::baselines::apsp_dijkstra;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;

    #[test]
    fn exact_for_every_cluster_shape() {
        let g = barabasi_albert(160, 3, WeightSpec::Unit, 77).unwrap();
        let reference = apsp_dijkstra(&g);
        for nodes in [1usize, 2, 3, 8] {
            for hub_fraction in [0.0, 0.05, 0.5, 1.0] {
                let out = dist_apsp(
                    &g,
                    ClusterConfig {
                        nodes,
                        hub_fraction,
                        ..ClusterConfig::default()
                    },
                );
                assert_eq!(
                    reference.first_difference(&out.dist),
                    None,
                    "nodes={nodes} hub={hub_fraction}"
                );
                assert_eq!(out.node_stats.iter().map(|s| s.sources).sum::<u64>(), 160);
            }
        }
    }

    #[test]
    fn exact_on_weighted_directed_graph() {
        let g = erdos_renyi_gnm(
            120,
            700,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 30 },
            78,
        )
        .unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(&g, ClusterConfig::default());
        assert_eq!(reference.first_difference(&out.dist), None);
    }

    #[test]
    fn zero_hub_fraction_means_zero_broadcast_traffic() {
        let g = barabasi_albert(100, 3, WeightSpec::Unit, 79).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.0,
                ..ClusterConfig::default()
            },
        );
        assert_eq!(out.total_broadcast_bytes(), 0);
        assert!(out.node_stats.iter().all(|s| s.remote_reuses == 0));
        // The streaming gather still moves the whole matrix: per row a
        // source id, a checksum, and n distances.
        assert_eq!(out.gather_bytes, 100 * (4 + 4 + 400));
        assert_eq!(out.gather_rejected, 0);
    }

    #[test]
    fn hub_broadcast_costs_scale_with_fraction() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 80).unwrap();
        let small = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.05,
                ..ClusterConfig::default()
            },
        );
        let large = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.5,
                ..ClusterConfig::default()
            },
        );
        assert!(small.total_broadcast_bytes() > 0);
        assert!(large.total_broadcast_bytes() > small.total_broadcast_bytes());
    }

    #[test]
    fn single_node_cluster_equals_sequential() {
        let g = barabasi_albert(90, 2, WeightSpec::Unit, 81).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 1,
                hub_fraction: 0.1,
                ..ClusterConfig::default()
            },
        );
        let reference = apsp_dijkstra(&g);
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.total_broadcast_bytes(), 0); // nobody to talk to
        assert!(out.node_stats[0].local_reuses > 0);
    }

    #[test]
    fn every_partition_strategy_is_exact_and_covers_all_sources() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 82).unwrap();
        let reference = apsp_dijkstra(&g);
        for partition in [
            SourcePartition::CyclicByDegree,
            SourcePartition::BlockByDegree,
            SourcePartition::CyclicById,
        ] {
            let out = dist_apsp(
                &g,
                ClusterConfig {
                    nodes: 4,
                    hub_fraction: 0.1,
                    partition,
                    ..ClusterConfig::default()
                },
            );
            assert_eq!(reference.first_difference(&out.dist), None, "{partition:?}");
            assert_eq!(
                out.node_stats.iter().map(|s| s.sources).sum::<u64>(),
                140,
                "{partition:?}"
            );
        }
    }

    #[test]
    fn degree_aware_partitions_reuse_more_than_degree_blind() {
        // Cyclic-by-degree lets every node see hub rows early; cyclic-by-id
        // does not order local sweeps at all, so it should do no better.
        let g = barabasi_albert(300, 4, WeightSpec::Unit, 83).unwrap();
        let run = |partition| {
            let out = dist_apsp(
                &g,
                ClusterConfig {
                    nodes: 4,
                    hub_fraction: 0.1,
                    partition,
                    ..ClusterConfig::default()
                },
            );
            out.node_stats
                .iter()
                .map(|s| s.local_reuses + s.remote_reuses)
                .sum::<u64>()
        };
        let by_degree = run(SourcePartition::CyclicByDegree);
        let by_id = run(SourcePartition::CyclicById);
        // A structural smoke check rather than a strict inequality (timing
        // nondeterminism moves reuse between local and remote): both must
        // reuse substantially.
        assert!(by_degree > 0 && by_id > 0);
    }

    #[test]
    fn crashed_node_work_is_recovered_exactly() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 90).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.1,
                faults: FaultPlan::seeded(11).crash_node_after(2, 5),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.crashed_nodes(), 1);
        assert!(out.node_stats[2].crashed);
        assert_eq!(out.node_stats[2].sources, 5);
        let taken_over: u64 = out.node_stats.iter().map(|s| s.reassigned_sources).sum();
        // Node 2 owned ceil-ish 150/4 sources and finished 5 of them.
        assert_eq!(taken_over, 37 - 5);
        assert_eq!(
            out.node_stats.iter().map(|s| s.sources).sum::<u64>(),
            150,
            "every source must be computed exactly once"
        );
    }

    #[test]
    fn immediate_crash_and_cascading_crashes_are_survivable() {
        let g = barabasi_albert(120, 3, WeightSpec::Unit, 91).unwrap();
        let reference = apsp_dijkstra(&g);
        // Node 0 dies before computing anything; node 1 dies mid-recovery.
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 3,
                hub_fraction: 0.1,
                faults: FaultPlan::seeded(5)
                    .crash_node_after(0, 0)
                    .crash_node_after(1, 10),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.crashed_nodes(), 2);
        assert_eq!(out.node_stats[0].sources, 0);
    }

    #[test]
    fn dropped_broadcasts_cost_reuse_not_correctness() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 92).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.3,
                faults: FaultPlan::seeded(3).with_drop_probability(0.5),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        // Senders paid for every broadcast; receivers saw only about half.
        let sent = out.total_broadcast_bytes();
        let received: u64 = out.node_stats.iter().map(|s| s.bytes_received).sum();
        assert!(
            received < sent,
            "drops must shrink the received volume ({received} vs {sent})"
        );
    }

    #[test]
    fn corrupted_rows_are_rejected_and_retried_until_exact() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 93).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.3,
                faults: FaultPlan::seeded(8).with_corrupt_probability(0.3),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert!(
            out.gather_rejected > 0,
            "q=0.3 over 140 gather rows must reject some"
        );
        let retries: u64 = out.node_stats.iter().map(|s| s.retries).sum();
        assert_eq!(retries, out.gather_rejected);
    }

    #[test]
    fn combined_fault_storm_still_bit_identical() {
        let g = erdos_renyi_gnm(
            110,
            600,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 20 },
            94,
        )
        .unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.2,
                faults: FaultPlan::seeded(21)
                    .crash_node_after(1, 3)
                    .crash_node_after(3, 12)
                    .with_drop_probability(0.25)
                    .with_corrupt_probability(0.2),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.crashed_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "all nodes crashed")]
    fn crashing_every_node_is_fatal() {
        let g = barabasi_albert(60, 2, WeightSpec::Unit, 95).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 2,
                hub_fraction: 0.0,
                faults: FaultPlan::seeded(1)
                    .crash_node_after(0, 2)
                    .crash_node_after(1, 2),
                ..ClusterConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let g = barabasi_albert(10, 2, WeightSpec::Unit, 1).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 0,
                hub_fraction: 0.0,
                ..ClusterConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "hub fraction")]
    fn bad_hub_fraction_rejected() {
        let g = barabasi_albert(10, 2, WeightSpec::Unit, 1).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 2,
                hub_fraction: 1.5,
                ..ClusterConfig::default()
            },
        );
    }
}
