//! The cluster driver: source partitioning, hub broadcasting, streaming
//! gather, and crash recovery.
//!
//! # Fault-tolerance protocol
//!
//! Nodes stream each completed row to the driver as soon as it is done
//! (instead of a single bulk gather at the end), so work finished before a
//! crash is never lost. Every row on the wire carries an FNV-1a checksum:
//!
//! * a corrupted **hub broadcast** is discarded by the receiving node
//!   (row reuse is an optimization, so nothing else is needed);
//! * a corrupted **gather row** makes the driver request a re-send from
//!   the node that still holds the clean row.
//!
//! A crash is a node thread returning early: its channels disconnect, and
//! the driver — which never blocks longer than [`ClusterConfig::heartbeat`]
//! on any one mailbox — observes the disconnect after draining whatever
//! the node managed to send. The crashed node's unfinished sources are then
//! re-dealt cyclically over the survivors, preserving their original
//! (degree-order) sequence. Because the kernel is exact regardless of
//! which rows happen to be available for reuse, the recovered matrix is
//! bit-identical to the fault-free one as long as one node survives.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;

use parapsp_core::engine::{Engine, Plan, RowsCtx, RowsOutcome, RunConfig, RunSummary, ValueEnum};
use parapsp_core::persist::{mint_run_id, Checkpoint, FsyncPolicy, RowLedger};
use parapsp_core::{DistanceMatrix, RunOutcome, Store, StoreKind, StoreSpec, INF};
use parapsp_graph::{degree, CsrGraph};
use parapsp_order::OrderingProcedure;
use parapsp_parfor::{CancelStatus, CancelToken, ThreadPool};

use crate::chaos::{ChaosPlan, ChaosTransport};
use crate::fault::{FaultPlan, DRIVER};
use crate::node::{NodeState, RowMessage};
use crate::socket::{SocketStartError, SocketTransport};
use crate::transport::{
    ChannelNodeIo, ChannelTransport, ControlSink, NodeControl, NodeEvent, NodeIo, Polled,
    SocketConfig, Transport, TransportSpec,
};
use crate::wire::WorkerSetup;

/// How sources are divided among the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourcePartition {
    /// Deal the global descending degree order cyclically: every node gets
    /// an equal share of hubs and processes them first (the distributed
    /// analogue of `schedule(static, 1)` over the degree order).
    #[default]
    CyclicByDegree,
    /// Contiguous blocks of the degree order: node 0 gets all the hubs.
    /// Deliberately bad — the distributed analogue of the paper's losing
    /// block-partitioning scheme in Fig. 1, kept for comparison.
    BlockByDegree,
    /// Cyclic by raw vertex id, ignoring degrees (no ordering benefit
    /// inside each node's local sweep).
    CyclicById,
}

impl ValueEnum for SourcePartition {
    fn value_variants() -> &'static [Self] {
        &[
            SourcePartition::CyclicByDegree,
            SourcePartition::BlockByDegree,
            SourcePartition::CyclicById,
        ]
    }

    fn value_name(&self) -> &'static str {
        match self {
            SourcePartition::CyclicByDegree => "cyclic-degree",
            SourcePartition::BlockByDegree => "block-degree",
            SourcePartition::CyclicById => "cyclic-id",
        }
    }
}

/// Bounds and pacing for gather-row re-delivery after a checksum failure.
///
/// Each rejected delivery of a source's row triggers a re-send from the
/// node that holds it, but only up to [`max_resends`](Self::max_resends)
/// times; after that the driver stops trusting the path and re-deals the
/// source to a *different* survivor instead. Before each re-send the node
/// backs off exponentially — `min(cap_ms, base_ms << (attempt - 1))` plus
/// a deterministic seeded jitter of up to `base_ms` — so a flaky path is
/// not hammered at full rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-sends allowed per source before the driver reassigns it to
    /// another node (`0` means reassign on the first rejection). When only
    /// one node is alive there is nobody else to deal to, so re-sends
    /// continue past the bound rather than deadlocking.
    pub max_resends: u64,
    /// Backoff before the first re-send, in milliseconds; doubles per
    /// attempt. Also the span of the added jitter.
    pub base_ms: u64,
    /// Upper bound on a single backoff sleep, in milliseconds (jitter
    /// excluded).
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_resends: 6,
            base_ms: 1,
            cap_ms: 8,
        }
    }
}

/// Driver-side stall detection for nodes that go silent without crashing.
///
/// The driver records the gap between consecutive gather rows from each
/// node. A node that still owes rows but has been silent for more than
/// `stall_factor ×` its rolling median gap (never less than `floor`) is
/// declared stalled: its ungathered sources are re-dealt to the other
/// survivors. The stalled node is *not* killed — if it wakes up its
/// deliveries are deduplicated by the driver, so a false positive costs
/// only duplicate work, never correctness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Multiple of the rolling median inter-row gap that counts as stalled.
    pub stall_factor: f64,
    /// Minimum recorded gaps before the median is trusted; below this the
    /// node is never declared stalled.
    pub min_samples: usize,
    /// Absolute lower bound on the stall threshold, so fast nodes with
    /// sub-millisecond medians are not flagged by scheduling noise.
    pub floor: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_factor: 8.0,
            min_samples: 2,
            floor: Duration::from_millis(25),
        }
    }
}

/// Where the driver journals gathered rows, and how hard it fsyncs.
///
/// With a ledger configured the driver appends every accepted gather row
/// to a crash-safe append-only log ([`RowLedger`]) as it is acked, and a
/// restarted driver pointed at the same file replays the valid prefix and
/// re-deals only the missing sources to its (re-dialing) workers. The
/// ledger also carries the run's identity — `run_id` and `epoch` — used
/// in the worker handshake to fence off strangers and stale incarnations.
#[derive(Debug, Clone)]
pub struct LedgerSpec {
    /// The ledger file; created fresh, or recovered when it exists.
    pub path: PathBuf,
    /// When appended rows reach the platter.
    pub fsync: FsyncPolicy,
}

impl LedgerSpec {
    /// A ledger at `path` with the default (per-commit) fsync policy.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        LedgerSpec {
            path: path.into(),
            fsync: FsyncPolicy::default(),
        }
    }
}

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated distributed-memory nodes (each is one thread
    /// with private memory).
    pub nodes: usize,
    /// Fraction of sources (taken from the top of the degree order) whose
    /// completed rows are broadcast to all other nodes. `0.0` disables
    /// communication entirely; `1.0` broadcasts everything.
    pub hub_fraction: f64,
    /// Source-to-node assignment strategy.
    pub partition: SourcePartition,
    /// Faults to inject; the default plan injects none.
    pub faults: FaultPlan,
    /// Upper bound on how long the driver blocks on any one node's mailbox
    /// before re-polling the cluster — the detection latency for crashes.
    pub heartbeat: Duration,
    /// Re-delivery bounds and backoff pacing for rejected gather rows.
    pub retry: RetryPolicy,
    /// Stall detection; `None` (the default) disables the watchdog, so a
    /// silent-but-alive node is simply waited on.
    pub watchdog: Option<WatchdogConfig>,
    /// How driver and nodes exchange rows: in-process channels (the
    /// default) or length-prefix-framed sockets to worker processes.
    pub transport: TransportSpec,
    /// Incremental driver-side durability: `None` (the default) keeps the
    /// PR-6 behaviour (rows survive only in stop checkpoints); `Some`
    /// journals every accepted row and makes the driver restartable.
    pub ledger: Option<LedgerSpec>,
    /// Adversarial network conditions injected between the nodes' event
    /// streams and the driver; `None` (the default) injects nothing.
    pub chaos: Option<ChaosPlan>,
    /// Storage backend for the driver's gather target (see
    /// [`parapsp_core::store`]): gathered rows are published into this
    /// store instead of a dense matrix, so an out-of-core backend bounds
    /// the driver's resident O(n²) state too. Node-local row shares stay
    /// dense (they are O(n²/P) by construction).
    pub store: StoreSpec,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            hub_fraction: 0.05,
            partition: SourcePartition::CyclicByDegree,
            faults: FaultPlan::default(),
            heartbeat: Duration::from_millis(10),
            retry: RetryPolicy::default(),
            watchdog: None,
            transport: TransportSpec::InProcess,
            ledger: None,
            chaos: None,
            store: StoreSpec::dense(),
        }
    }
}

/// A self-describing rejection of a [`ClusterConfig`], produced by
/// [`ClusterConfig::validate`] before any thread, socket, or process is
/// created.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterConfigError {
    /// `nodes == 0`.
    ZeroNodes,
    /// `hub_fraction` outside `[0, 1]`.
    HubFractionOutOfRange(f64),
    /// More nodes than sources: the extra nodes would idle for the whole
    /// run (tolerated by the driver, but almost always a misconfiguration
    /// worth rejecting at a CLI boundary).
    MoreNodesThanSources {
        /// Configured cluster size.
        nodes: usize,
        /// Sources (vertices) actually available to partition.
        sources: usize,
    },
    /// A pacing interval or timeout is zero; the named knob would make
    /// the protocol spin or hang instead of pacing it.
    ZeroDuration(&'static str),
    /// The socket heartbeat miss budget is zero intervals.
    ZeroHeartbeatMisses,
    /// The socket gather batch is zero rows per frame.
    ZeroRowBatch,
    /// The worker dial policy allows zero connection attempts.
    ZeroConnectAttempts,
}

impl std::fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterConfigError::ZeroNodes => write!(f, "a cluster needs at least one node"),
            ClusterConfigError::HubFractionOutOfRange(v) => {
                write!(f, "hub fraction {v} outside [0, 1]")
            }
            ClusterConfigError::MoreNodesThanSources { nodes, sources } => write!(
                f,
                "{nodes} nodes but only {sources} sources: every node needs at least one \
                 source to own (reduce the node count)"
            ),
            ClusterConfigError::ZeroDuration(what) => write!(
                f,
                "{what} must be non-zero: a zero interval spins or hangs the protocol \
                 instead of pacing it"
            ),
            ClusterConfigError::ZeroHeartbeatMisses => write!(
                f,
                "heartbeat miss budget must be at least one interval, or every worker is \
                 declared dead immediately"
            ),
            ClusterConfigError::ZeroRowBatch => {
                write!(f, "row batch must be at least one row per gather frame")
            }
            ClusterConfigError::ZeroConnectAttempts => {
                write!(f, "worker connect policy needs at least one attempt")
            }
        }
    }
}

impl std::error::Error for ClusterConfigError {}

impl ClusterConfig {
    /// Full validation against a concrete source count, for explicit
    /// construction sites (the CLI calls this before building an engine).
    /// Everything [`validate_shape`](Self::validate_shape) rejects, plus
    /// `nodes > sources`.
    pub fn validate(&self, sources: usize) -> Result<(), ClusterConfigError> {
        self.validate_shape()?;
        if self.nodes > sources {
            return Err(ClusterConfigError::MoreNodesThanSources {
                nodes: self.nodes,
                sources,
            });
        }
        Ok(())
    }

    /// Graph-independent validation: zero nodes, out-of-range hub
    /// fraction, and zero-interval/zero-timeout socket pacing. The driver
    /// enforces exactly this subset at run time (`nodes > sources` merely
    /// idles the surplus nodes, which randomized fault tests rely on).
    pub fn validate_shape(&self) -> Result<(), ClusterConfigError> {
        if self.nodes == 0 {
            return Err(ClusterConfigError::ZeroNodes);
        }
        if !(0.0..=1.0).contains(&self.hub_fraction) {
            return Err(ClusterConfigError::HubFractionOutOfRange(self.hub_fraction));
        }
        if self.heartbeat.is_zero() {
            return Err(ClusterConfigError::ZeroDuration("driver heartbeat"));
        }
        if let TransportSpec::Socket(socket) = &self.transport {
            if socket.heartbeat_interval.is_zero() {
                return Err(ClusterConfigError::ZeroDuration(
                    "worker heartbeat interval",
                ));
            }
            if socket.read_timeout.is_zero() {
                return Err(ClusterConfigError::ZeroDuration("socket read timeout"));
            }
            if socket.write_timeout.is_zero() {
                return Err(ClusterConfigError::ZeroDuration("socket write timeout"));
            }
            if socket.accept_timeout.is_zero() {
                return Err(ClusterConfigError::ZeroDuration("worker accept timeout"));
            }
            if socket.heartbeat_misses == 0 {
                return Err(ClusterConfigError::ZeroHeartbeatMisses);
            }
            if socket.row_batch == 0 {
                return Err(ClusterConfigError::ZeroRowBatch);
            }
            if socket.connect.attempts == 0 {
                return Err(ClusterConfigError::ZeroConnectAttempts);
            }
        }
        Ok(())
    }
}

/// Per-node measurements of the simulated run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Sources this node computed.
    pub sources: u64,
    /// Row-reuse events against the node's own completed rows.
    pub local_reuses: u64,
    /// Row-reuse events against rows received from other nodes.
    pub remote_reuses: u64,
    /// Bytes sent broadcasting hub rows (dropped messages included — the
    /// sender paid for them).
    pub bytes_sent: u64,
    /// Bytes received from other nodes' broadcasts.
    pub bytes_received: u64,
    /// Received hub rows discarded for failing their checksum.
    pub rows_rejected: u64,
    /// Gather rows re-sent after the driver rejected a corrupted copy.
    pub retries: u64,
    /// Total milliseconds this node slept in retry backoff (exponential
    /// delay plus seeded jitter) before re-sending rejected rows.
    pub retry_backoff_ms: u64,
    /// Sources taken over from crashed or stalled nodes.
    pub reassigned_sources: u64,
    /// Socket transport: connection attempts beyond the first this worker
    /// burned dialing the driver (seeded-exponential-backoff retries,
    /// e.g. when the worker started before the driver was listening).
    /// Always zero on the in-process transport.
    pub reconnects: u64,
    /// Socket transport: heartbeat intervals that elapsed with no traffic
    /// from this worker, as observed by the driver's reader thread.
    /// Always zero on the in-process transport.
    pub heartbeat_misses: u64,
    /// Whether this node crashed (by fault injection, or — on the socket
    /// transport — a real process death) before finishing.
    pub crashed: bool,
}

/// Result of a distributed run: the exact distance matrix plus per-node
/// communication statistics and the gather-phase volume.
#[derive(Debug)]
pub struct DistApspOutput {
    /// The exact all-pairs distance matrix (gathered on the "driver").
    pub dist: DistanceMatrix,
    /// One entry per simulated node.
    pub node_stats: Vec<NodeStats>,
    /// Bytes moved streaming rows to the driver (rejected deliveries
    /// included — they crossed the wire too).
    pub gather_bytes: u64,
    /// Gather rows the driver rejected for failing their checksum.
    pub gather_rejected: u64,
    /// Sources the watchdog re-dealt away from silent-but-alive nodes.
    pub watchdog_reassigned: u64,
    /// Rows restored from a run ledger or resume checkpoint instead of
    /// being recomputed — the savings a driver restart is worth.
    pub replayed_rows: u64,
    /// End-to-end wall time of the simulated run.
    pub elapsed: std::time::Duration,
}

impl DistApspOutput {
    /// Total broadcast traffic across the cluster (excludes the gather).
    pub fn total_broadcast_bytes(&self) -> u64 {
        self.node_stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// How many nodes crashed during the run.
    pub fn crashed_nodes(&self) -> usize {
        self.node_stats.iter().filter(|s| s.crashed).count()
    }
}

/// The simulated-cluster driver as a [`Runner`]-drivable [`Engine`].
///
/// The whole distributed run — source partitioning, hub broadcasting,
/// streaming gather, crash recovery — is one indivisible work unit, so the
/// engine reports a single-unit plan and does not support periodic row
/// checkpoints ([`Engine::row_checkpoints`] is `false`). Cancellation still
/// works: the cluster driver polls the token every scheduling round, and a
/// stop yields a checkpoint of all gathered rows, resumable on any
/// shared-memory engine.
///
/// The cluster's own ordering is always MultiLists over the global degree
/// order (the distributed analogue of ParAPSP), so the [`RunConfig`]'s
/// ordering procedure and schedule are ignored; `max_distance` is honoured
/// as an exact post-filter on the gathered matrix.
///
/// The graph is replicated on every node (standard practice for
/// source-partitioned APSP: the O(n + m) structure is negligible next to
/// the O(n²/P) row share each node stores). Sources are dealt cyclically
/// along the global descending degree order; completed rows of the top
/// `hub_fraction` sources are broadcast, and every completed row is
/// streamed to the driver immediately so crashes lose no finished work.
///
/// # Panics
///
/// The run panics if the fault plan crashes every node: with no survivor
/// there is nobody left to take over the unfinished sources.
///
/// ```
/// use parapsp_core::engine::{RunConfig, Runner};
/// use parapsp_dist::{ClusterConfig, DistEngine};
/// use parapsp_graph::generate::{barabasi_albert, WeightSpec};
///
/// let g = barabasi_albert(120, 3, WeightSpec::Unit, 1).unwrap();
/// let config = ClusterConfig { nodes: 3, hub_fraction: 0.1, ..ClusterConfig::default() };
/// let out = Runner::new(RunConfig::new(1)).run(DistEngine::new(config), &g);
/// assert_eq!(out.dist.get(0, 0), 0);
/// assert_eq!(out.node_stats.len(), 3);
/// ```
#[derive(Debug)]
pub struct DistEngine {
    cluster: ClusterConfig,
    n: usize,
    cap: Option<u32>,
    result: Option<DistApspOutput>,
    stopped: Option<Checkpoint>,
    resume: Option<Checkpoint>,
}

impl DistEngine {
    /// An engine simulating the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        DistEngine {
            cluster,
            n: 0,
            cap: None,
            result: None,
            stopped: None,
            resume: None,
        }
    }

    /// The simulated cluster's configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }
}

impl Engine for DistEngine {
    type Output = DistApspOutput;

    fn name(&self) -> &str {
        "DistCluster"
    }

    fn row_checkpoints(&self) -> bool {
        false
    }

    fn prepare(
        &mut self,
        graph: &CsrGraph,
        config: &RunConfig,
        _pool: &ThreadPool,
        resume: Option<Checkpoint>,
    ) -> Plan {
        if let Some(resume) = &resume {
            assert_eq!(
                resume.n(),
                graph.vertex_count(),
                "the resume checkpoint is for a different graph size"
            );
        }
        // Resumed rows pre-seed the driver's gather: they are marked got,
        // excluded from every node's share, and merged with whatever a
        // configured ledger replays.
        self.resume = resume;
        self.n = graph.vertex_count();
        self.cap = config.kernel().max_distance;
        // The engine-agnostic `--store` selection reaches the cluster here:
        // the driver's gather target uses the run config's backend.
        self.cluster.store = config.store().clone();
        // The whole cluster run is one unit; its internal ordering cost is
        // part of the simulation and not separable.
        Plan {
            units: vec![0],
            ordering: Duration::ZERO,
        }
    }

    fn run_rows(&mut self, graph: &CsrGraph, _units: &[u32], ctx: &RowsCtx<'_>) -> RowsOutcome {
        match run_cluster(graph, self.cluster.clone(), ctx.token, self.resume.take()) {
            RunOutcome::Complete(output) => {
                self.result = Some(output);
                CancelStatus::Continue
            }
            RunOutcome::Cancelled { checkpoint } => {
                self.stopped = Some(checkpoint);
                CancelStatus::Cancelled
            }
            RunOutcome::DeadlineExceeded { checkpoint } => {
                self.stopped = Some(checkpoint);
                CancelStatus::DeadlineExceeded
            }
        }
    }

    fn snapshot(&self) -> Checkpoint {
        match &self.stopped {
            Some(checkpoint) => checkpoint.clone(),
            None => Checkpoint::new(DistanceMatrix::new_infinite(self.n), vec![false; self.n]),
        }
    }

    fn finish(self, _graph: &CsrGraph, summary: RunSummary) -> DistApspOutput {
        let mut output = self.result.expect("run_rows() did not complete");
        if let Some(cap) = self.cap {
            let n = output.dist.n();
            let full = std::mem::replace(&mut output.dist, DistanceMatrix::new_infinite(0));
            let mut data = full.into_raw();
            for i in 0..n {
                for j in 0..n {
                    if i != j && data[i * n + j] > cap {
                        data[i * n + j] = INF;
                    }
                }
            }
            output.dist = DistanceMatrix::from_raw(n, data);
        }
        output.elapsed = summary.timings.total;
        output
    }
}

/// Test-only convenience: drives a [`DistEngine`] through a [`Runner`]
/// with the default single-driver config. Shared by this crate's unit
/// tests (cluster, socket, fault); library callers construct the Runner
/// themselves.
#[cfg(test)]
pub(crate) fn dist_apsp(graph: &CsrGraph, config: ClusterConfig) -> DistApspOutput {
    parapsp_core::engine::Runner::new(RunConfig::new(1)).run(DistEngine::new(config), graph)
}

/// Cancellable flavour of the [`dist_apsp`] test helper.
#[cfg(test)]
pub(crate) fn dist_apsp_cancellable(
    graph: &CsrGraph,
    config: ClusterConfig,
    token: &CancelToken,
) -> RunOutcome<DistApspOutput> {
    parapsp_core::engine::Runner::new(RunConfig::new(1)).run_with_token(
        DistEngine::new(config),
        graph,
        token,
    )
}

/// Opens (or creates) the configured ledger and folds its replayed rows
/// into the run's prior checkpoint. Explicit-resume rows missing from the
/// ledger are backfilled into it, so after this the ledger alone is the
/// durable record of the run. Returns the ledger handle (if configured),
/// the merged prior rows (if any), and the run identity for handshakes.
fn open_prior(
    config: &ClusterConfig,
    n: usize,
    resume: Option<Checkpoint>,
) -> (Option<RowLedger>, Option<Checkpoint>, u64, u32) {
    let Some(spec) = &config.ledger else {
        let run_id = mint_run_id();
        return (None, resume, run_id, 0);
    };
    let (mut ledger, replayed) = match RowLedger::open(&spec.path, n, spec.fsync) {
        Ok(opened) => opened,
        Err(error) => panic!("opening the run ledger {}: {error}", spec.path.display()),
    };
    let merged = match resume {
        None => replayed,
        Some(explicit) => {
            let (mut dist, mut completed) = explicit.into_parts();
            let (replayed_dist, replayed_completed) = replayed.into_parts();
            for s in 0..n as u32 {
                let have = completed[s as usize];
                if replayed_completed[s as usize] && !have {
                    dist.copy_row_from(s, replayed_dist.row(s));
                    completed[s as usize] = true;
                } else if have && !replayed_completed[s as usize] {
                    ledger
                        .append(s, dist.row(s))
                        .unwrap_or_else(|error| panic!("backfilling the run ledger: {error}"));
                }
            }
            ledger
                .commit()
                .unwrap_or_else(|error| panic!("committing the run ledger: {error}"));
            Checkpoint::new(dist, completed)
        }
    };
    let (run_id, epoch) = (ledger.run_id(), ledger.epoch());
    let prior = (merged.completed_count() > 0).then_some(merged);
    (Some(ledger), prior, run_id, epoch)
}

fn run_cluster(
    graph: &CsrGraph,
    config: ClusterConfig,
    token: Option<&CancelToken>,
    resume: Option<Checkpoint>,
) -> RunOutcome<DistApspOutput> {
    if let Err(error) = config.validate_shape() {
        panic!("{error}");
    }
    let n = graph.vertex_count();
    let nodes = config.nodes;
    let start = Instant::now();

    // Global preprocessing (the "driver" step of a real deployment): the
    // descending degree order, shared read-only by all nodes.
    let degrees = degree::out_degrees(graph);
    let order_pool = ThreadPool::new(1);
    let order = OrderingProcedure::multi_lists().compute(&degrees, &order_pool);

    // Hub set: the first `hub_fraction * n` sources of the order.
    let hub_count = ((n as f64) * config.hub_fraction).round() as usize;
    let mut is_hub = vec![false; n];
    for &s in order.iter().take(hub_count) {
        is_hub[s as usize] = true;
    }

    // Assign sources to nodes per the configured partition strategy.
    let mut owned: Vec<Vec<u32>> = match config.partition {
        SourcePartition::CyclicByDegree => (0..nodes)
            .map(|k| order.iter().skip(k).step_by(nodes).copied().collect())
            .collect(),
        SourcePartition::BlockByDegree => {
            let mut owned = vec![Vec::new(); nodes];
            let per_node = n.div_ceil(nodes.max(1)).max(1);
            for (i, &s) in order.iter().enumerate() {
                owned[(i / per_node).min(nodes - 1)].push(s);
            }
            owned
        }
        SourcePartition::CyclicById => (0..nodes)
            .map(|k| (k as u32..n as u32).step_by(nodes).collect())
            .collect(),
    };

    // Prior rows from a resume checkpoint and/or a recovered ledger are
    // already final: pre-seed the gather with them and deal only the
    // missing sources, so a restarted driver recomputes strictly less.
    let (ledger, prior, run_id, epoch) = open_prior(&config, n, resume);
    if let Some(prior) = &prior {
        let done = prior.completed();
        for share in &mut owned {
            share.retain(|&s| !done[s as usize]);
        }
    }
    let mut driver = Driver::new(nodes, owned.clone(), n, config.retry);
    driver.ledger = ledger;
    if config.store.kind() != StoreKind::Dense {
        // `Driver::new` built the default dense gather target; swap in the
        // configured backend before any row lands in it.
        driver.store = Store::new(n, &config.store);
    }
    if let Some(prior) = &prior {
        for s in 0..n as u32 {
            if prior.completed()[s as usize] {
                driver.got[s as usize] = true;
                driver.gathered += 1;
                driver.store.publish_from(s, prior.matrix().row(s));
            }
        }
        driver.replayed = driver.gathered as u64;
    }

    match config.transport.clone() {
        TransportSpec::InProcess => {
            run_cluster_channels(graph, &config, token, n, &is_hub, &owned, driver, start)
        }
        TransportSpec::Socket(socket) => {
            let identity = (run_id, epoch);
            run_cluster_socket(
                graph, &config, &socket, token, n, &is_hub, &owned, driver, identity, start,
            )
        }
    }
}

/// The transport-agnostic driver loop: poll the token, drain events,
/// run the watchdog, and block (boundedly) only when truly idle. Returns
/// `Some(status)` when a cancellation or deadline stopped the run early.
fn drive<T: Transport>(
    driver: &mut Driver,
    transport: &mut T,
    config: &ClusterConfig,
    token: Option<&CancelToken>,
    n: usize,
) -> Option<CancelStatus> {
    while driver.gathered < n {
        // Cooperative stop: the driver is the only poll()-er (nodes use
        // the non-consuming status()), so poll-budget cancellation in
        // tests trips after a deterministic number of driver rounds.
        if let Some(token) = token {
            let status = token.poll();
            if status.is_stop() {
                return Some(status);
            }
        }
        // Drain every alive node's event stream; a closed stream here is
        // the crash signal (both backends report it only after the
        // buffered rows are consumed, so no finished work is lost).
        let mut progressed = false;
        for k in 0..driver.nodes {
            if !driver.alive[k] {
                continue;
            }
            loop {
                match transport.try_event(k) {
                    Polled::Event(event) => {
                        driver.on_event(k, event, transport);
                        progressed = true;
                    }
                    Polled::Empty => break,
                    Polled::Down => {
                        driver.on_crash(k, transport);
                        progressed = true;
                        break;
                    }
                }
            }
        }
        if let Some(watchdog) = &config.watchdog {
            driver.check_watchdog(watchdog, transport);
        }
        // One ledger commit per driver round batches the fsyncs of every
        // row drained above (a no-op round is a no-op commit).
        driver.commit_ledger();
        if driver.gathered >= n || progressed {
            continue;
        }
        // Nothing queued anywhere: block — but never unboundedly — on a
        // node that still owes rows, then re-poll the whole cluster. A
        // deadline token bounds the blocking wait too, so a sleeping
        // driver wakes in time to stop (the bridge between cooperative
        // cancellation and blocking socket reads).
        let watch = driver
            .watch_target()
            .expect("ungathered sources must have an alive owner");
        let wait = token
            .and_then(|t| t.time_left())
            .map_or(config.heartbeat, |left| left.min(config.heartbeat));
        match transport.event_timeout(watch, wait) {
            Polled::Event(event) => driver.on_event(watch, event, transport),
            Polled::Empty => {}
            Polled::Down => driver.on_crash(watch, transport),
        }
    }
    None
}

/// Runs [`drive`] with the configured [`ChaosPlan`] (if any) wrapped
/// around the transport. When the loop ends, anything chaos still holds —
/// duplicates of the final rows, late hub relays — is folded into the
/// driver over the raw transport, so a cancelled run's checkpoint loses
/// nothing that was already on the (chaotic) wire.
fn drive_with_chaos<T: Transport>(
    driver: &mut Driver,
    transport: &mut T,
    config: &ClusterConfig,
    token: Option<&CancelToken>,
    n: usize,
) -> Option<CancelStatus> {
    let Some(plan) = config.chaos.as_ref().filter(|plan| !plan.is_inert()) else {
        return drive(driver, transport, config, token, n);
    };
    let (stop, held) = {
        let mut chaos = ChaosTransport::new(transport, plan.clone(), config.nodes);
        let stop = drive(driver, &mut chaos, config, token, n);
        (stop, chaos.into_pending())
    };
    for (k, event) in held {
        driver.on_event(k, event, transport);
    }
    driver.commit_ledger();
    stop
}

/// The in-process backend: one scoped thread per node, crossbeam
/// channels for the wire, hub rows delivered peer-to-peer.
#[allow(clippy::too_many_arguments)]
fn run_cluster_channels(
    graph: &CsrGraph,
    config: &ClusterConfig,
    token: Option<&CancelToken>,
    n: usize,
    is_hub: &[bool],
    owned: &[Vec<u32>],
    mut driver: Driver,
    start: Instant,
) -> RunOutcome<DistApspOutput> {
    let nodes = config.nodes;
    let mut control_senders = Vec::with_capacity(nodes);
    let mut control_receivers = Vec::with_capacity(nodes);
    let mut gather_senders = Vec::with_capacity(nodes);
    let mut gather_receivers = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let (ctx, crx) = unbounded();
        control_senders.push(ctx);
        control_receivers.push(Some(crx));
        let (gtx, grx) = unbounded();
        gather_senders.push(Some(gtx));
        gather_receivers.push(grx);
    }
    let mut transport = ChannelTransport {
        control_tx: control_senders.clone(),
        gather_rx: gather_receivers,
    };

    let plan = &config.faults;
    let retry = &config.retry;
    let mut node_stats = vec![NodeStats::default(); nodes];
    let mut stop = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nodes)
            .map(|k| {
                let mut io = ChannelNodeIo {
                    k,
                    inbox: control_receivers[k].take().expect("receiver taken once"),
                    peers: control_senders.clone(),
                    gather: gather_senders[k].take().expect("sender taken once"),
                };
                let owned_k = &owned[k];
                scope.spawn(move || {
                    (
                        k,
                        run_node_loop(
                            k,
                            graph,
                            owned_k,
                            is_hub,
                            nodes,
                            plan,
                            retry,
                            token,
                            Duration::ZERO,
                            &mut io,
                        ),
                    )
                })
            })
            .collect();

        stop = drive_with_chaos(&mut driver, &mut transport, config, token, n);

        for k in 0..nodes {
            if driver.alive[k] {
                transport.control(k, NodeControl::Shutdown);
            }
        }
        for handle in handles {
            let (k, stats) = handle.join().expect("node thread panicked");
            node_stats[k] = stats;
        }
    });

    if stop.is_some() {
        // Rows already on the wire when the stop hit are still sitting in
        // the (now disconnected) gather buffers; fold them in so the
        // checkpoint loses nothing that was finished. Control replies the
        // driver attempts here land on dead mailboxes and are dropped.
        for k in 0..nodes {
            while let Polled::Event(event) = transport.try_event(k) {
                driver.on_event(k, event, &mut transport);
            }
        }
    }

    finish_output(driver, node_stats, start, stop)
}

/// The socket backend: bind, handshake every worker (spawning threads or
/// processes per [`SocketConfig::workers`]), then run the same driver
/// loop with per-connection reader threads feeding the event streams.
#[allow(clippy::too_many_arguments)]
fn run_cluster_socket(
    graph: &CsrGraph,
    config: &ClusterConfig,
    socket: &SocketConfig,
    token: Option<&CancelToken>,
    n: usize,
    is_hub: &[bool],
    owned: &[Vec<u32>],
    mut driver: Driver,
    identity: (u64, u32),
    start: Instant,
) -> RunOutcome<DistApspOutput> {
    let nodes = config.nodes;
    let (run_id, epoch) = identity;
    let hubs: Vec<u32> = (0..n as u32).filter(|&v| is_hub[v as usize]).collect();
    let setups: Vec<WorkerSetup> = (0..nodes)
        .map(|k| WorkerSetup {
            node_id: k as u32,
            nodes: nodes as u32,
            run_id,
            epoch,
            heartbeat_ms: u64::try_from(socket.heartbeat_interval.as_millis()).unwrap_or(u64::MAX),
            row_batch: socket.row_batch as u32,
            retry: config.retry,
            hubs: hubs.clone(),
            owned: owned[k].clone(),
            faults: config.faults.clone(),
            graph: graph.clone(),
        })
        .collect();
    let (mut transport, dead_at_start) = match SocketTransport::start(socket, setups, token) {
        Ok(started) => started,
        Err(SocketStartError::Stopped(status)) => {
            // Cancelled while waiting for workers: whatever the ledger or
            // resume checkpoint already held is still the run's state.
            let store = std::mem::replace(&mut driver.store, Store::new(0, &StoreSpec::dense()));
            let checkpoint = Checkpoint::new(store.into_matrix(), driver.got.clone());
            driver.finish_ledger();
            return RunOutcome::from_stop(status, checkpoint);
        }
        Err(SocketStartError::Io(message)) => panic!("socket transport setup failed: {message}"),
    };

    // Workers that never completed the handshake are crashes that
    // happened before the run: re-deal their shares immediately.
    for k in dead_at_start {
        driver.on_crash(k, &mut transport);
    }
    let stop = drive_with_chaos(&mut driver, &mut transport, config, token, n);
    // Shutdown goes to every node with a live connection — including one
    // the driver wrongly presumed dead (heartbeat false positive), which
    // would otherwise block on its inbox forever. Dead connections
    // swallow the write harmlessly.
    for k in 0..nodes {
        transport.control(k, NodeControl::Shutdown);
    }
    // Teardown: drain late rows and final Stats frames, join readers and
    // worker threads, reap worker processes.
    // During teardown no node is waiting on a reply, so late events fold
    // into the driver with replies discarded.
    struct NullSink;
    impl ControlSink for NullSink {
        fn control(&mut self, _node: usize, _message: NodeControl) {}
    }
    for (k, event) in transport.finish() {
        driver.on_event(k, event, &mut NullSink);
    }

    let mut node_stats = vec![NodeStats::default(); nodes];
    for (k, slot) in node_stats.iter_mut().enumerate() {
        let mut stats = driver.wire_stats[k].unwrap_or(NodeStats {
            // A worker that died without a Stats frame (injected crash,
            // kill -9, lost connection): credit the rows it delivered so
            // "every source computed at least once" stays auditable from
            // the per-node summary.
            sources: driver.delivered[k],
            crashed: true,
            ..NodeStats::default()
        });
        if !driver.alive[k] {
            stats.crashed = true;
        }
        stats.heartbeat_misses = transport.heartbeat_misses(k);
        *slot = stats;
    }
    finish_output(driver, node_stats, start, stop)
}

/// Folds the driver state into the public output / checkpoint.
fn finish_output(
    mut driver: Driver,
    node_stats: Vec<NodeStats>,
    start: Instant,
    stop: Option<CancelStatus>,
) -> RunOutcome<DistApspOutput> {
    // Rows accepted after the last driver round (late drains, chaos
    // releases) are committed here, before the run is declared over.
    driver.finish_ledger();
    let got = driver.got;
    let output = DistApspOutput {
        // Collapses the gather store into the dense output matrix
        // (zero-copy for the default dense backend).
        dist: driver.store.into_matrix(),
        node_stats,
        gather_bytes: driver.gather_bytes,
        gather_rejected: driver.gather_rejected,
        watchdog_reassigned: driver.watchdog_reassigned,
        replayed_rows: driver.replayed,
        elapsed: start.elapsed(),
    };
    match stop {
        None => RunOutcome::Complete(output),
        Some(status) => RunOutcome::from_stop(status, Checkpoint::new(output.dist, got)),
    }
}

/// Driver-side bookkeeping for the streaming gather and crash recovery.
/// All control replies go through a [`ControlSink`], so the recovery
/// logic is testable with a recording mock, independent of any cluster.
struct Driver {
    nodes: usize,
    alive: Vec<bool>,
    /// Sources each node is currently responsible for, in assignment
    /// order; entries are filtered against `got` rather than removed.
    outstanding: Vec<Vec<u32>>,
    got: Vec<bool>,
    gathered: usize,
    gather_bytes: u64,
    gather_rejected: u64,
    /// Round-robin cursor for dealing crashed nodes' work to survivors.
    reassign_cursor: usize,
    retry: RetryPolicy,
    /// Rejected deliveries per source, for bounding re-sends.
    reject_count: Vec<u64>,
    watchdog_reassigned: u64,
    /// When each node last put anything on its gather wire (its liveness
    /// signal for the watchdog).
    last_seen: Vec<Instant>,
    /// Recent inter-row gaps per node, newest last, bounded window.
    gaps: Vec<Vec<Duration>>,
    /// Rows accepted into the matrix per sending node — the basis for
    /// synthesizing stats of a worker that died without reporting any.
    delivered: Vec<u64>,
    /// Final stats received over the wire (socket transport only).
    wire_stats: Vec<Option<NodeStats>>,
    /// The gather target: accepted rows are published here, in the
    /// backend the [`ClusterConfig`] selected.
    store: Store,
    /// Incremental durability: every accepted row is appended here, and
    /// the driver commits once per scheduling round.
    ledger: Option<RowLedger>,
    /// Rows pre-seeded from a ledger replay or resume checkpoint.
    replayed: u64,
}

/// How many inter-row gaps the watchdog's rolling median looks back over.
const GAP_WINDOW: usize = 32;

impl Driver {
    /// Fresh bookkeeping for `nodes` nodes owning `outstanding` shares of
    /// an `n`-vertex gather.
    fn new(nodes: usize, outstanding: Vec<Vec<u32>>, n: usize, retry: RetryPolicy) -> Self {
        Driver {
            nodes,
            alive: vec![true; nodes],
            outstanding,
            got: vec![false; n],
            gathered: 0,
            gather_bytes: 0,
            gather_rejected: 0,
            reassign_cursor: 0,
            retry,
            reject_count: vec![0; n],
            watchdog_reassigned: 0,
            last_seen: vec![Instant::now(); nodes],
            gaps: vec![Vec::new(); nodes],
            delivered: vec![0; nodes],
            wire_stats: vec![None; nodes],
            store: Store::new(n, &StoreSpec::dense()),
            ledger: None,
            replayed: 0,
        }
    }

    /// Commits buffered ledger appends (a no-op without a ledger, or when
    /// nothing was appended since the last commit).
    fn commit_ledger(&mut self) {
        if let Some(ledger) = &mut self.ledger {
            ledger
                .commit()
                .unwrap_or_else(|error| panic!("committing the run ledger: {error}"));
        }
    }

    /// Final commit-and-close of the ledger; idempotent.
    fn finish_ledger(&mut self) {
        if let Some(ledger) = self.ledger.take() {
            ledger
                .finish()
                .unwrap_or_else(|error| panic!("closing the run ledger: {error}"));
        }
    }

    /// Dispatches one transport event from node `k`.
    fn on_event<S: ControlSink>(&mut self, k: usize, event: NodeEvent, sink: &mut S) {
        match event {
            NodeEvent::Row(message) => self.on_row(k, message, sink),
            NodeEvent::HubFwd { to, msg } => {
                // Star-topology hub relay: the origin already applied its
                // per-peer fault decisions, the driver just forwards.
                if to < self.nodes && to != k && self.alive[to] {
                    sink.control(to, NodeControl::Hub(msg));
                }
            }
            NodeEvent::Stats(stats) => self.wire_stats[k] = Some(stats),
        }
    }

    /// Handles one gather message from node `k`.
    fn on_row<S: ControlSink>(&mut self, k: usize, message: RowMessage, sink: &mut S) {
        let now = Instant::now();
        let gap = now.duration_since(self.last_seen[k]);
        self.last_seen[k] = now;
        if self.gaps[k].len() == GAP_WINDOW {
            self.gaps[k].remove(0);
        }
        self.gaps[k].push(gap);
        self.gather_bytes += message.wire_bytes();
        if !message.verify() {
            self.gather_rejected += 1;
            let s = message.source as usize;
            if !self.got[s] {
                self.reject_count[s] += 1;
                if self.reject_count[s] <= self.retry.max_resends
                    || !self.redeal_away_from(k, message.source, sink)
                {
                    // Within the retry budget — or past it with nobody else
                    // alive to deal to, where re-sending (each attempt draws
                    // fresh fault coordinates) is the only road to progress.
                    sink.control(k, NodeControl::Resend(message.source));
                }
            }
            return;
        }
        let s = message.source as usize;
        if self.got[s] {
            return;
        }
        self.got[s] = true;
        self.gathered += 1;
        self.delivered[k] += 1;
        self.store.publish_from(message.source, &message.row);
        // The row is accepted: journal it before anything else can
        // observe it as gathered. Fsync timing follows the ledger's
        // policy — `Always` syncs here, `Commit` at the driver round.
        if let Some(ledger) = &mut self.ledger {
            ledger
                .append(message.source, &message.row)
                .unwrap_or_else(|error| panic!("appending to the run ledger: {error}"));
        }
    }

    /// Re-deals source `s` to an alive node other than `k` (the path that
    /// exhausted its retry budget). Returns `false` when `k` is the only
    /// survivor.
    fn redeal_away_from<S: ControlSink>(&mut self, k: usize, s: u32, sink: &mut S) -> bool {
        let survivors: Vec<usize> = (0..self.nodes)
            .filter(|&j| self.alive[j] && j != k)
            .collect();
        if survivors.is_empty() {
            return false;
        }
        let j = survivors[self.reassign_cursor % survivors.len()];
        self.reassign_cursor += 1;
        self.outstanding[k].retain(|&x| x != s);
        self.outstanding[j].push(s);
        sink.control(j, NodeControl::Assign(s));
        true
    }

    /// Declares nodes stalled when they owe rows but have been silent
    /// longer than `stall_factor ×` their rolling median inter-row gap
    /// (never less than `floor`), and re-deals their ungathered sources to
    /// the other survivors. A stalled node is left alive: late deliveries
    /// are deduplicated, so waking up costs nothing but duplicate work.
    fn check_watchdog<S: ControlSink>(&mut self, watchdog: &WatchdogConfig, sink: &mut S) {
        for k in 0..self.nodes {
            if !self.alive[k] || self.gaps[k].len() < watchdog.min_samples {
                continue;
            }
            let owes: Vec<u32> = self.outstanding[k]
                .iter()
                .copied()
                .filter(|&s| !self.got[s as usize])
                .collect();
            if owes.is_empty() {
                continue;
            }
            let mut sorted = self.gaps[k].clone();
            sorted.sort();
            let median = sorted[sorted.len() / 2];
            let threshold = median.mul_f64(watchdog.stall_factor).max(watchdog.floor);
            if self.last_seen[k].elapsed() <= threshold {
                continue;
            }
            let survivors: Vec<usize> = (0..self.nodes)
                .filter(|&j| self.alive[j] && j != k)
                .collect();
            if survivors.is_empty() {
                continue; // nobody to take over; keep waiting
            }
            self.outstanding[k].clear();
            // Give the node a fresh full threshold before a second strike.
            self.last_seen[k] = Instant::now();
            for s in owes {
                let j = survivors[self.reassign_cursor % survivors.len()];
                self.reassign_cursor += 1;
                self.outstanding[j].push(s);
                self.watchdog_reassigned += 1;
                sink.control(j, NodeControl::Assign(s));
            }
        }
    }

    /// Handles node `k`'s disconnect: re-deal its unfinished sources
    /// cyclically over the survivors, preserving their original order.
    fn on_crash<S: ControlSink>(&mut self, k: usize, sink: &mut S) {
        self.alive[k] = false;
        let remaining: Vec<u32> = self.outstanding[k]
            .iter()
            .copied()
            .filter(|&s| !self.got[s as usize])
            .collect();
        self.outstanding[k].clear();
        if remaining.is_empty() {
            return;
        }
        let survivors: Vec<usize> = (0..self.nodes).filter(|&j| self.alive[j]).collect();
        assert!(
            !survivors.is_empty(),
            "all nodes crashed with {} sources unfinished — nothing left to recover on",
            remaining.len()
        );
        for s in remaining {
            let j = survivors[self.reassign_cursor % survivors.len()];
            self.reassign_cursor += 1;
            self.outstanding[j].push(s);
            sink.control(j, NodeControl::Assign(s));
        }
    }

    /// An alive node that still owes rows (the one to block on).
    fn watch_target(&self) -> Option<usize> {
        (0..self.nodes)
            .find(|&k| self.alive[k] && self.outstanding[k].iter().any(|&s| !self.got[s as usize]))
    }
}

/// The body of one node, written once against [`NodeIo`]: an in-process
/// node thread (channel transport) and a remote worker process (socket
/// transport) both run exactly this loop, so protocol behaviour —
/// including every deterministic fault decision and its coordinates — is
/// identical across transports.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_node_loop<IO: NodeIo>(
    k: usize,
    graph: &CsrGraph,
    initial: &[u32],
    is_hub: &[bool],
    nodes: usize,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    token: Option<&CancelToken>,
    source_delay: Duration,
    io: &mut IO,
) -> NodeStats {
    let n = graph.vertex_count();
    let crash_after = plan.crash_after(k);
    let stall = plan.stall_after(k);
    let mut stalled = false;
    let mut state = NodeState::new(n, initial);
    let mut pending: VecDeque<u32> = initial.iter().copied().collect();
    let mut stats = NodeStats::default();
    // Delivery attempt per source, so re-sends draw fresh fault decisions.
    let mut attempts = vec![0u64; n];
    let mut completed = 0u64;

    'life: loop {
        // Drain the mailbox so freshly arrived hub rows, assignments, and
        // re-send requests are handled before the next SSSP.
        loop {
            match io.try_recv() {
                Ok(Some(message)) => {
                    if handle_control(
                        message,
                        k,
                        plan,
                        retry,
                        &mut state,
                        &mut pending,
                        &mut stats,
                        &mut attempts,
                        io,
                    ) {
                        break 'life;
                    }
                }
                Ok(None) => break,
                Err(_) => break 'life,
            }
        }
        // Injected crash: stop dead without a word — the thread returns /
        // the worker slams its socket — and the driver finds out from the
        // closed stream, exactly like a real death.
        if crash_after.is_some_and(|after| completed >= after) {
            stats.crashed = true;
            break;
        }
        // Injected stall: go silent without dying, then resume. (A socket
        // worker's heartbeat thread keeps beating through the stall — a
        // stall is not a crash, and only the watchdog may re-deal it.)
        if let Some((after, millis)) = stall {
            if !stalled && completed >= after {
                stalled = true;
                io.flush();
                std::thread::sleep(Duration::from_millis(millis));
            }
        }
        // A tripped token parks the node: it stops starting sources (the
        // in-flight one, if any, already finished) and waits for the
        // driver's Shutdown instead of exiting — a unilateral exit would
        // look like a crash and trigger pointless reassignment.
        let parked = token.is_some_and(|t| t.status().is_stop());
        let Some(s) = (if parked { None } else { pending.pop_front() }) else {
            // Idle: wait for more work, a hub row, or shutdown. `recv`
            // implementations flush buffered rows before blocking.
            match io.recv() {
                Ok(message) => {
                    if handle_control(
                        message,
                        k,
                        plan,
                        retry,
                        &mut state,
                        &mut pending,
                        &mut stats,
                        &mut attempts,
                        io,
                    ) {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            }
        };
        if state.row_for(s).is_some() {
            continue; // already computed (defensive; assignments are unique)
        }
        if !source_delay.is_zero() {
            // Testing throttle (`node --delay-ms`): pace this worker so
            // integration tests can kill it deterministically mid-run.
            std::thread::sleep(source_delay);
        }
        let row = state.run_source(graph, s).to_vec();
        completed += 1;
        stats.sources += 1;
        if is_hub[s as usize] {
            for peer in 0..nodes {
                if peer == k {
                    continue;
                }
                // The clone is the network copy; the sender pays for the
                // bytes whether or not the wire eats the message.
                let mut message = RowMessage::new(s, row.clone());
                stats.bytes_sent += message.wire_bytes();
                if plan.drops_broadcast(k as u64, peer as u64, s) {
                    continue;
                }
                if plan.corrupts_payload(k as u64, peer as u64, s, 0) {
                    plan.corrupt_row(k as u64, peer as u64, s, 0, &mut message.row);
                }
                io.send_hub(peer, message);
            }
        }
        io.send_row(seal_gather_row(k, s, &row, attempts[s as usize], plan));
    }

    stats.local_reuses = state.local_reuses;
    stats.remote_reuses = state.remote_reuses;
    stats.rows_rejected = state.rows_rejected;
    stats
}

/// Processes one control message; returns `true` on shutdown.
#[allow(clippy::too_many_arguments)]
fn handle_control<IO: NodeIo>(
    message: NodeControl,
    k: usize,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    state: &mut NodeState,
    pending: &mut VecDeque<u32>,
    stats: &mut NodeStats,
    attempts: &mut [u64],
    io: &mut IO,
) -> bool {
    match message {
        NodeControl::Hub(row) => {
            stats.bytes_received += row.wire_bytes();
            state.accept(row);
            false
        }
        NodeControl::Assign(s) => {
            // A re-deal can cycle back to a node that already finished the
            // source (watchdog false positive, or a rejected delivery being
            // routed away and back). Re-deliver the finished row — dropping
            // the assignment instead would leave the driver waiting on a
            // row nobody intends to send.
            if let Some(row) = state.row_for(s) {
                let row = row.to_vec();
                attempts[s as usize] += 1;
                io.send_row(seal_gather_row(k, s, &row, attempts[s as usize], plan));
                io.flush();
                return false;
            }
            if pending.contains(&s) {
                return false;
            }
            state.assign(s);
            pending.push_back(s);
            stats.reassigned_sources += 1;
            false
        }
        NodeControl::Resend(s) => {
            stats.retries += 1;
            attempts[s as usize] += 1;
            let attempt = attempts[s as usize];
            // Exponential backoff with deterministic jitter before the
            // re-send, so a flaky path is not hammered at full rate.
            let exponential = retry
                .cap_ms
                .min(retry.base_ms.saturating_mul(1u64 << (attempt - 1).min(62)));
            let sleep_ms =
                exponential + plan.backoff_jitter_ms(k as u64, s, attempt, retry.base_ms);
            if sleep_ms > 0 {
                std::thread::sleep(Duration::from_millis(sleep_ms));
                stats.retry_backoff_ms += sleep_ms;
            }
            let row = state
                .row_for(s)
                .expect("driver requested a re-send of a row this node never sent")
                .to_vec();
            // Flush immediately: the driver is actively waiting on this
            // row, batching it would add a round of latency for nothing.
            io.send_row(seal_gather_row(k, s, &row, attempt, plan));
            io.flush();
            false
        }
        NodeControl::Shutdown => true,
    }
}

/// Seals one completed row for the driver, applying payload faults drawn
/// at gather coordinates (`k → DRIVER`, per-attempt).
fn seal_gather_row(k: usize, s: u32, row: &[u32], attempt: u64, plan: &FaultPlan) -> RowMessage {
    let mut message = RowMessage::new(s, row.to_vec());
    if plan.corrupts_payload(k as u64, DRIVER, s, attempt) {
        plan.corrupt_row(k as u64, DRIVER, s, attempt, &mut message.row);
    }
    message
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapsp_core::baselines::apsp_dijkstra;
    use parapsp_core::engine::Runner;
    use parapsp_graph::generate::{barabasi_albert, erdos_renyi_gnm, WeightSpec};
    use parapsp_graph::Direction;

    #[test]
    fn exact_for_every_cluster_shape() {
        let g = barabasi_albert(160, 3, WeightSpec::Unit, 77).unwrap();
        let reference = apsp_dijkstra(&g);
        for nodes in [1usize, 2, 3, 8] {
            for hub_fraction in [0.0, 0.05, 0.5, 1.0] {
                let out = dist_apsp(
                    &g,
                    ClusterConfig {
                        nodes,
                        hub_fraction,
                        ..ClusterConfig::default()
                    },
                );
                assert_eq!(
                    reference.first_difference(&out.dist),
                    None,
                    "nodes={nodes} hub={hub_fraction}"
                );
                assert_eq!(out.node_stats.iter().map(|s| s.sources).sum::<u64>(), 160);
            }
        }
    }

    #[test]
    fn exact_on_weighted_directed_graph() {
        let g = erdos_renyi_gnm(
            120,
            700,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 30 },
            78,
        )
        .unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(&g, ClusterConfig::default());
        assert_eq!(reference.first_difference(&out.dist), None);
    }

    #[test]
    fn zero_hub_fraction_means_zero_broadcast_traffic() {
        let g = barabasi_albert(100, 3, WeightSpec::Unit, 79).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.0,
                ..ClusterConfig::default()
            },
        );
        assert_eq!(out.total_broadcast_bytes(), 0);
        assert!(out.node_stats.iter().all(|s| s.remote_reuses == 0));
        // The streaming gather still moves the whole matrix: per row a
        // source id, a checksum, and n distances.
        assert_eq!(out.gather_bytes, 100 * (4 + 4 + 400));
        assert_eq!(out.gather_rejected, 0);
    }

    #[test]
    fn hub_broadcast_costs_scale_with_fraction() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 80).unwrap();
        let small = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.05,
                ..ClusterConfig::default()
            },
        );
        let large = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.5,
                ..ClusterConfig::default()
            },
        );
        assert!(small.total_broadcast_bytes() > 0);
        assert!(large.total_broadcast_bytes() > small.total_broadcast_bytes());
    }

    #[test]
    fn single_node_cluster_equals_sequential() {
        let g = barabasi_albert(90, 2, WeightSpec::Unit, 81).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 1,
                hub_fraction: 0.1,
                ..ClusterConfig::default()
            },
        );
        let reference = apsp_dijkstra(&g);
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.total_broadcast_bytes(), 0); // nobody to talk to
        assert!(out.node_stats[0].local_reuses > 0);
    }

    #[test]
    fn every_partition_strategy_is_exact_and_covers_all_sources() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 82).unwrap();
        let reference = apsp_dijkstra(&g);
        for partition in [
            SourcePartition::CyclicByDegree,
            SourcePartition::BlockByDegree,
            SourcePartition::CyclicById,
        ] {
            let out = dist_apsp(
                &g,
                ClusterConfig {
                    nodes: 4,
                    hub_fraction: 0.1,
                    partition,
                    ..ClusterConfig::default()
                },
            );
            assert_eq!(reference.first_difference(&out.dist), None, "{partition:?}");
            assert_eq!(
                out.node_stats.iter().map(|s| s.sources).sum::<u64>(),
                140,
                "{partition:?}"
            );
        }
    }

    #[test]
    fn degree_aware_partitions_reuse_more_than_degree_blind() {
        // Cyclic-by-degree lets every node see hub rows early; cyclic-by-id
        // does not order local sweeps at all, so it should do no better.
        let g = barabasi_albert(300, 4, WeightSpec::Unit, 83).unwrap();
        let run = |partition| {
            let out = dist_apsp(
                &g,
                ClusterConfig {
                    nodes: 4,
                    hub_fraction: 0.1,
                    partition,
                    ..ClusterConfig::default()
                },
            );
            out.node_stats
                .iter()
                .map(|s| s.local_reuses + s.remote_reuses)
                .sum::<u64>()
        };
        let by_degree = run(SourcePartition::CyclicByDegree);
        let by_id = run(SourcePartition::CyclicById);
        // A structural smoke check rather than a strict inequality (timing
        // nondeterminism moves reuse between local and remote): both must
        // reuse substantially.
        assert!(by_degree > 0 && by_id > 0);
    }

    #[test]
    fn crashed_node_work_is_recovered_exactly() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 90).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.1,
                faults: FaultPlan::seeded(11).crash_node_after(2, 5),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.crashed_nodes(), 1);
        assert!(out.node_stats[2].crashed);
        assert_eq!(out.node_stats[2].sources, 5);
        let taken_over: u64 = out.node_stats.iter().map(|s| s.reassigned_sources).sum();
        // Node 2 owned ceil-ish 150/4 sources and finished 5 of them.
        assert_eq!(taken_over, 37 - 5);
        assert_eq!(
            out.node_stats.iter().map(|s| s.sources).sum::<u64>(),
            150,
            "every source must be computed exactly once"
        );
    }

    #[test]
    fn immediate_crash_and_cascading_crashes_are_survivable() {
        let g = barabasi_albert(120, 3, WeightSpec::Unit, 91).unwrap();
        let reference = apsp_dijkstra(&g);
        // Node 0 dies before computing anything; node 1 dies mid-recovery.
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 3,
                hub_fraction: 0.1,
                faults: FaultPlan::seeded(5)
                    .crash_node_after(0, 0)
                    .crash_node_after(1, 10),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.crashed_nodes(), 2);
        assert_eq!(out.node_stats[0].sources, 0);
    }

    #[test]
    fn dropped_broadcasts_cost_reuse_not_correctness() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 92).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.3,
                faults: FaultPlan::seeded(3).with_drop_probability(0.5),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        // Senders paid for every broadcast; receivers saw only about half.
        let sent = out.total_broadcast_bytes();
        let received: u64 = out.node_stats.iter().map(|s| s.bytes_received).sum();
        assert!(
            received < sent,
            "drops must shrink the received volume ({received} vs {sent})"
        );
    }

    #[test]
    fn corrupted_rows_are_rejected_and_retried_until_exact() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 93).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.3,
                faults: FaultPlan::seeded(8).with_corrupt_probability(0.3),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert!(
            out.gather_rejected > 0,
            "q=0.3 over 140 gather rows must reject some"
        );
        let retries: u64 = out.node_stats.iter().map(|s| s.retries).sum();
        assert_eq!(retries, out.gather_rejected);
    }

    #[test]
    fn combined_fault_storm_still_bit_identical() {
        let g = erdos_renyi_gnm(
            110,
            600,
            Direction::Directed,
            WeightSpec::Uniform { lo: 1, hi: 20 },
            94,
        )
        .unwrap();
        let reference = apsp_dijkstra(&g);
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.2,
                faults: FaultPlan::seeded(21)
                    .crash_node_after(1, 3)
                    .crash_node_after(3, 12)
                    .with_drop_probability(0.25)
                    .with_corrupt_probability(0.2),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.crashed_nodes(), 2);
    }

    #[test]
    fn retry_backoff_is_slept_and_accounted() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 93).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.3,
                faults: FaultPlan::seeded(8).with_corrupt_probability(0.3),
                ..ClusterConfig::default()
            },
        );
        let retries: u64 = out.node_stats.iter().map(|s| s.retries).sum();
        let backoff: u64 = out.node_stats.iter().map(|s| s.retry_backoff_ms).sum();
        assert!(retries > 0);
        // Every re-send sleeps at least base_ms = 1 (plus jitter), and no
        // single sleep exceeds cap_ms + base_ms.
        assert!(backoff >= retries, "{backoff}ms over {retries} retries");
        let policy = RetryPolicy::default();
        assert!(backoff <= retries * (policy.cap_ms + policy.base_ms));
    }

    #[test]
    fn exhausted_retry_budget_redeals_to_another_node() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 93).unwrap();
        let reference = apsp_dijkstra(&g);
        // max_resends = 0: the first rejection of any source immediately
        // re-deals it to a different node instead of asking for a re-send.
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.0,
                faults: FaultPlan::seeded(8).with_corrupt_probability(0.3),
                retry: RetryPolicy {
                    max_resends: 0,
                    base_ms: 0,
                    cap_ms: 0,
                },
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert!(out.gather_rejected > 0, "q=0.3 must reject some rows");
        let retries: u64 = out.node_stats.iter().map(|s| s.retries).sum();
        assert_eq!(retries, 0, "no re-sends allowed under max_resends = 0");
        let redealt: u64 = out.node_stats.iter().map(|s| s.reassigned_sources).sum();
        assert!(redealt > 0, "rejected sources must move to other nodes");
    }

    #[test]
    fn watchdog_redeals_a_stalled_nodes_sources() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 96).unwrap();
        let reference = apsp_dijkstra(&g);
        // Node 1 goes silent for 2 s after 2 sources — without a watchdog
        // the run would wait the stall out; with one it must finish long
        // before, on rows recomputed by the other nodes.
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 3,
                hub_fraction: 0.1,
                faults: FaultPlan::seeded(4).stall_node_after(1, 2, 2_000),
                watchdog: Some(WatchdogConfig {
                    floor: Duration::from_millis(20),
                    ..WatchdogConfig::default()
                }),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert!(
            out.watchdog_reassigned > 0,
            "the stalled node's sources must be re-dealt"
        );
        assert_eq!(out.crashed_nodes(), 0, "a stall is not a crash");
        // The run must not have waited out the 2 s stall to gather rows
        // (join at shutdown still waits for the sleeping thread, so allow
        // the stall itself plus scheduling slack but not a serial wait).
        assert!(
            out.elapsed < Duration::from_secs(4),
            "took {:?}",
            out.elapsed
        );
        let computed: u64 = out.node_stats.iter().map(|s| s.sources).sum();
        assert!(computed >= 150, "every source is computed at least once");
    }

    #[test]
    fn watchdog_stays_quiet_on_a_healthy_cluster() {
        let g = barabasi_albert(140, 3, WeightSpec::Unit, 97).unwrap();
        let out = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 4,
                hub_fraction: 0.1,
                watchdog: Some(WatchdogConfig::default()),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(out.watchdog_reassigned, 0, "no stalls, no re-deals");
        assert_eq!(out.node_stats.iter().map(|s| s.sources).sum::<u64>(), 140);
    }

    #[test]
    fn untripped_token_completes_and_matches() {
        let g = barabasi_albert(120, 3, WeightSpec::Unit, 98).unwrap();
        let token = parapsp_parfor::CancelToken::new();
        let out = dist_apsp_cancellable(&g, ClusterConfig::default(), &token).unwrap_complete();
        assert_eq!(apsp_dijkstra(&g).first_difference(&out.dist), None);
    }

    #[test]
    fn cancelled_dist_run_checkpoints_and_resumes_bit_identically() {
        let g = barabasi_albert(150, 3, WeightSpec::Unit, 99).unwrap();
        let reference = apsp_dijkstra(&g);
        for budget in [0u64, 3, 25] {
            let token = parapsp_parfor::CancelToken::with_poll_budget(budget);
            let outcome = dist_apsp_cancellable(&g, ClusterConfig::default(), &token);
            // Only the number of *driver rounds* before the trip is
            // deterministic — node threads keep producing rows until they
            // observe the trip, so on a loaded machine every row can be on
            // the wire before the budget runs out and the run legitimately
            // completes (the driver gathers n rows without a failed poll).
            let cp = match outcome {
                RunOutcome::Cancelled { checkpoint } => checkpoint,
                RunOutcome::Complete(out) if budget > 0 => {
                    assert_eq!(
                        reference.first_difference(&out.dist),
                        None,
                        "budget {budget}"
                    );
                    continue;
                }
                other => panic!("budget {budget} should cancel, got {other:?}"),
            };
            // Resume on the shared-memory engine: bit-identical finish.
            let resumed = parapsp_core::engine::Runner::new(RunConfig::par_apsp(2)).run_resumed(
                parapsp_core::ApspEngine::new(),
                &g,
                cp,
            );
            assert_eq!(
                reference.first_difference(&resumed.dist),
                None,
                "budget {budget}"
            );
        }
    }

    #[test]
    fn deadline_stops_a_distributed_run() {
        let g = barabasi_albert(200, 3, WeightSpec::Unit, 100).unwrap();
        let token = parapsp_parfor::CancelToken::with_deadline(Duration::ZERO);
        let outcome = dist_apsp_cancellable(&g, ClusterConfig::default(), &token);
        match outcome {
            RunOutcome::DeadlineExceeded { checkpoint } => {
                assert_eq!(checkpoint.completed_count(), 0, "deadline hit on round 1");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "all nodes crashed")]
    fn crashing_every_node_is_fatal() {
        let g = barabasi_albert(60, 2, WeightSpec::Unit, 95).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 2,
                hub_fraction: 0.0,
                faults: FaultPlan::seeded(1)
                    .crash_node_after(0, 2)
                    .crash_node_after(1, 2),
                ..ClusterConfig::default()
            },
        );
    }

    #[test]
    fn dist_engine_runs_through_runner_with_cap_post_filter() {
        let g = barabasi_albert(120, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 44).unwrap();
        let reference = apsp_dijkstra(&g);
        let out = Runner::new(RunConfig::new(1)).run(DistEngine::new(ClusterConfig::default()), &g);
        assert_eq!(reference.first_difference(&out.dist), None);
        // A capped run equals the exact matrix post-filtered at the cap.
        let cap = 3;
        let capped = Runner::new(RunConfig::new(1).with_max_distance(cap))
            .run(DistEngine::new(ClusterConfig::default()), &g);
        for u in 0..120u32 {
            for v in 0..120u32 {
                let exact = reference.get(u, v);
                let expected = if u != v && exact > cap { INF } else { exact };
                assert_eq!(capped.dist.get(u, v), expected, "({u}, {v})");
            }
        }
    }

    #[test]
    fn dist_engine_resumes_a_checkpoint_and_recomputes_only_the_rest() {
        let g = barabasi_albert(80, 3, WeightSpec::Uniform { lo: 1, hi: 9 }, 9).unwrap();
        let reference = apsp_dijkstra(&g);
        // A checkpoint holding the first 30 finished rows...
        let mut dist = DistanceMatrix::new_infinite(80);
        let mut completed = vec![false; 80];
        for s in 0..30u32 {
            dist.copy_row_from(s, reference.row(s));
            completed[s as usize] = true;
        }
        let cp = Checkpoint::new(dist, completed);
        // ...is honoured by the distributed driver: the missing 50 rows
        // are dealt out, the resumed 30 are not recomputed, and the final
        // matrix is bit-identical.
        let out = Runner::new(RunConfig::new(1)).run_resumed(
            DistEngine::new(ClusterConfig {
                nodes: 3,
                ..ClusterConfig::default()
            }),
            &g,
            cp,
        );
        assert_eq!(reference.first_difference(&out.dist), None);
        assert_eq!(out.replayed_rows, 30);
        assert_eq!(out.node_stats.iter().map(|s| s.sources).sum::<u64>(), 50);
    }

    #[test]
    #[should_panic(expected = "checkpoint is for a 39-vertex matrix")]
    fn dist_engine_rejects_a_checkpoint_for_another_graph() {
        let g = barabasi_albert(40, 2, WeightSpec::Unit, 9).unwrap();
        let cp = Checkpoint::new(DistanceMatrix::new_infinite(39), vec![false; 39]);
        let _ = Runner::new(RunConfig::new(1)).run_resumed(
            DistEngine::new(ClusterConfig::default()),
            &g,
            cp,
        );
    }

    #[test]
    fn source_partition_parses_by_stable_name() {
        for partition in SourcePartition::value_variants() {
            assert_eq!(
                SourcePartition::parse_value(partition.value_name()).unwrap(),
                *partition
            );
        }
        let err = SourcePartition::parse_value("random").unwrap_err();
        assert!(err.contains("cyclic-degree") && err.contains("block-degree"));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let g = barabasi_albert(10, 2, WeightSpec::Unit, 1).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 0,
                hub_fraction: 0.0,
                ..ClusterConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "hub fraction")]
    fn bad_hub_fraction_rejected() {
        let g = barabasi_albert(10, 2, WeightSpec::Unit, 1).unwrap();
        let _ = dist_apsp(
            &g,
            ClusterConfig {
                nodes: 2,
                hub_fraction: 1.5,
                ..ClusterConfig::default()
            },
        );
    }

    #[test]
    fn validate_rejects_each_degenerate_config_with_its_own_error() {
        let ok = ClusterConfig {
            nodes: 2,
            ..ClusterConfig::default()
        };
        assert_eq!(ok.validate(100), Ok(()));

        let zero = ClusterConfig {
            nodes: 0,
            ..ClusterConfig::default()
        };
        assert_eq!(zero.validate(100), Err(ClusterConfigError::ZeroNodes));

        let fraction = ClusterConfig {
            nodes: 2,
            hub_fraction: -0.5,
            ..ClusterConfig::default()
        };
        assert_eq!(
            fraction.validate(100),
            Err(ClusterConfigError::HubFractionOutOfRange(-0.5))
        );

        let oversized = ClusterConfig {
            nodes: 8,
            ..ClusterConfig::default()
        };
        assert_eq!(
            oversized.validate(3),
            Err(ClusterConfigError::MoreNodesThanSources {
                nodes: 8,
                sources: 3
            })
        );

        let dead_heartbeat = ClusterConfig {
            nodes: 2,
            heartbeat: Duration::ZERO,
            ..ClusterConfig::default()
        };
        assert_eq!(
            dead_heartbeat.validate(100),
            Err(ClusterConfigError::ZeroDuration("driver heartbeat"))
        );

        let socket = SocketConfig {
            heartbeat_interval: Duration::ZERO,
            ..SocketConfig::default()
        };
        let dead_interval = ClusterConfig {
            nodes: 2,
            transport: TransportSpec::Socket(socket),
            ..ClusterConfig::default()
        };
        assert_eq!(
            dead_interval.validate(100),
            Err(ClusterConfigError::ZeroDuration(
                "worker heartbeat interval"
            ))
        );

        let socket = SocketConfig {
            heartbeat_misses: 0,
            ..SocketConfig::default()
        };
        let no_misses = ClusterConfig {
            nodes: 2,
            transport: TransportSpec::Socket(socket),
            ..ClusterConfig::default()
        };
        assert_eq!(
            no_misses.validate(100),
            Err(ClusterConfigError::ZeroHeartbeatMisses)
        );

        let socket = SocketConfig {
            row_batch: 0,
            ..SocketConfig::default()
        };
        let no_batch = ClusterConfig {
            nodes: 2,
            transport: TransportSpec::Socket(socket),
            ..ClusterConfig::default()
        };
        assert_eq!(
            no_batch.validate(100),
            Err(ClusterConfigError::ZeroRowBatch)
        );

        let mut socket = SocketConfig::default();
        socket.connect.attempts = 0;
        let no_dials = ClusterConfig {
            nodes: 2,
            transport: TransportSpec::Socket(socket),
            ..ClusterConfig::default()
        };
        assert_eq!(
            no_dials.validate(100),
            Err(ClusterConfigError::ZeroConnectAttempts)
        );

        // Every error Displays a human sentence and implements Error.
        for error in [
            ClusterConfigError::ZeroNodes,
            ClusterConfigError::HubFractionOutOfRange(2.0),
            ClusterConfigError::MoreNodesThanSources {
                nodes: 8,
                sources: 3,
            },
            ClusterConfigError::ZeroDuration("read-timeout"),
            ClusterConfigError::ZeroHeartbeatMisses,
            ClusterConfigError::ZeroRowBatch,
            ClusterConfigError::ZeroConnectAttempts,
        ] {
            let text = error.to_string();
            assert!(!text.is_empty());
            let _: &dyn std::error::Error = &error;
        }
    }

    // ---- Driver recovery logic in isolation (no cluster, no threads) ----

    /// A [`ControlSink`] that just records what the driver asked for.
    struct RecordingSink(Vec<(usize, NodeControl)>);

    impl ControlSink for RecordingSink {
        fn control(&mut self, node: usize, message: NodeControl) {
            self.0.push((node, message));
        }
    }

    fn corrupted_row(source: u32, n: usize) -> RowMessage {
        let mut message = RowMessage::new(source, vec![1; n]);
        message.checksum ^= 1;
        assert!(!message.verify());
        message
    }

    #[test]
    fn corrupted_rows_are_resent_until_the_budget_then_redealt() {
        let retry = RetryPolicy {
            max_resends: 2,
            ..RetryPolicy::default()
        };
        let mut driver = Driver::new(2, vec![vec![0, 1], vec![2, 3]], 4, retry);
        let mut sink = RecordingSink(Vec::new());

        // Two rejections: both within budget, both answered with Resend
        // to the original sender.
        for _ in 0..2 {
            driver.on_row(0, corrupted_row(1, 4), &mut sink);
        }
        assert_eq!(sink.0.len(), 2);
        assert!(sink
            .0
            .iter()
            .all(|(node, m)| *node == 0 && matches!(m, NodeControl::Resend(1))));

        // Third rejection exhausts the budget: the source is re-dealt to
        // the other survivor instead.
        driver.on_row(0, corrupted_row(1, 4), &mut sink);
        assert_eq!(sink.0.len(), 3);
        assert!(matches!(sink.0[2], (1, NodeControl::Assign(1))));
        assert!(driver.outstanding[1].contains(&1));
        assert!(!driver.outstanding[0].contains(&1));
        assert_eq!(driver.gather_rejected, 3);
        // Nothing was ever accepted.
        assert!(!driver.got[1]);
        assert_eq!(driver.delivered, vec![0, 0]);
    }

    #[test]
    fn sole_survivor_keeps_resending_past_the_budget() {
        let retry = RetryPolicy {
            max_resends: 1,
            ..RetryPolicy::default()
        };
        let mut driver = Driver::new(1, vec![vec![0, 1]], 2, retry);
        let mut sink = RecordingSink(Vec::new());
        for _ in 0..5 {
            driver.on_row(0, corrupted_row(0, 2), &mut sink);
        }
        // Re-dealing away is impossible; every rejection keeps asking the
        // only node for a fresh attempt (fresh attempts draw fresh fault
        // coordinates, so progress is still possible).
        assert_eq!(sink.0.len(), 5);
        assert!(sink
            .0
            .iter()
            .all(|(node, m)| *node == 0 && matches!(m, NodeControl::Resend(0))));
    }

    #[test]
    fn crash_redeals_unfinished_sources_cyclically_over_survivors() {
        let retry = RetryPolicy::default();
        let mut driver = Driver::new(3, vec![vec![0, 3], vec![1, 4, 5], vec![2]], 6, retry);
        let mut sink = RecordingSink(Vec::new());

        // Node 1 delivered source 4 before dying; only 1 and 5 remain.
        driver.on_row(1, RowMessage::new(4, vec![7; 6]), &mut sink);
        assert!(driver.got[4]);
        assert_eq!(driver.delivered[1], 1);

        driver.on_crash(1, &mut sink);
        assert!(!driver.alive[1]);
        assert!(driver.outstanding[1].is_empty());
        let assigns: Vec<(usize, u32)> = sink
            .0
            .iter()
            .filter_map(|(node, m)| match m {
                NodeControl::Assign(s) => Some((*node, *s)),
                _ => None,
            })
            .collect();
        // Cyclic deal over survivors {0, 2} in original source order.
        assert_eq!(assigns, vec![(0, 1), (2, 5)]);
        assert!(driver.outstanding[0].contains(&1));
        assert!(driver.outstanding[2].contains(&5));
    }

    #[test]
    fn duplicate_and_late_rows_are_deduplicated() {
        let retry = RetryPolicy::default();
        let mut driver = Driver::new(2, vec![vec![0], vec![1]], 2, retry);
        let mut sink = RecordingSink(Vec::new());
        driver.on_row(0, RowMessage::new(0, vec![0, 9]), &mut sink);
        // A late duplicate (e.g. a stalled node waking up) changes nothing.
        driver.on_row(1, RowMessage::new(0, vec![0, 5]), &mut sink);
        assert_eq!(driver.gathered, 1);
        assert_eq!(driver.delivered, vec![1, 0]);
        assert_eq!(driver.store.with_row(0, |row| row[1]), Some(9));
        // A corrupted duplicate of an already-gathered source draws no
        // Resend either — the row is already home.
        driver.on_row(1, corrupted_row(0, 2), &mut sink);
        assert!(sink.0.is_empty());
    }

    #[test]
    fn hub_forwards_are_relayed_only_to_alive_peers() {
        let retry = RetryPolicy::default();
        let mut driver = Driver::new(3, vec![vec![0], vec![1], vec![2]], 3, retry);
        let mut sink = RecordingSink(Vec::new());
        let row = RowMessage::new(0, vec![0, 1, 2]);
        driver.on_event(
            0,
            NodeEvent::HubFwd {
                to: 1,
                msg: row.clone(),
            },
            &mut sink,
        );
        assert!(matches!(sink.0[0], (1, NodeControl::Hub(_))));

        driver.on_crash(2, &mut sink);
        sink.0.clear();
        // Relay to a dead peer, to self, and out of range: all dropped.
        for to in [2usize, 0, 7] {
            driver.on_event(
                0,
                NodeEvent::HubFwd {
                    to,
                    msg: row.clone(),
                },
                &mut sink,
            );
        }
        assert!(sink.0.is_empty());
    }
}
