//! Distributed-memory ParAPSP — a faithful simulation of the paper's
//! stated future work ("extend the ParAPSP algorithm on distributed-memory
//! parallel environments so that we could find APSP solutions for much
//! larger graphs", §7).
//!
//! # Model
//!
//! A cluster of `P` **nodes** is simulated by `P` OS threads with strictly
//! *private* memory: each node owns only the distance rows of its assigned
//! sources (an `n²/P` share — the reason distributed memory unlocks larger
//! graphs than the paper's 256 GB machine). Nodes communicate exclusively
//! by message passing over channels; every transferred row is **cloned**
//! (modelling the network copy) and its bytes are accounted in
//! [`NodeStats`].
//!
//! # Algorithm
//!
//! Sources are assigned to nodes *cyclically along the global descending
//! degree order* (computed once with MultiLists, like ParAPSP), so every
//! node front-loads hub sources. The modified Dijkstra's row reuse then
//! draws on two pools:
//!
//! * rows the node itself has completed (always available), and
//! * **hub rows** broadcast by other nodes — only sources in the top
//!   `hub_fraction` of the degree order are broadcast, because complex
//!   networks concentrate reuse value in the hubs (paper §2.2) while
//!   broadcasting everything would cost Θ(P·n²) traffic.
//!
//! Exactness is unconditional: row reuse is an optimization, not a
//! correctness requirement, and only *final* rows are ever shared (same
//! argument as the shared-memory publication protocol).
//!
//! # Fault tolerance
//!
//! Runs can be subjected to a deterministic [`FaultPlan`]: node crashes,
//! dropped hub broadcasts, and bit-flipped row payloads. Rows are streamed
//! to the driver with checksums as they complete, crashed nodes are
//! detected through bounded-timeout heartbeats on their disconnected
//! channels, and their unfinished sources are re-dealt to survivors — so
//! any plan that leaves at least one node alive yields a distance matrix
//! bit-identical to the fault-free run (see the `cluster` module docs for
//! the protocol).

#![warn(missing_docs)]

//!
//! # Transports
//!
//! The driver/node protocol runs over a pluggable [`TransportSpec`]: the
//! in-process channel backend above, or length-prefix-framed TCP/Unix
//! sockets ([`SocketConfig`]) to worker processes launched by the driver,
//! spawned as `parapsp node` subprocesses, or started by hand on other
//! terminals ([`WorkerMode`]). The socket path carries the same checksums,
//! retries, and re-deals, plus heartbeat keepalives — so a worker that is
//! `kill -9`ed mid-run is detected (EOF or missed heartbeats) and its
//! sources recovered exactly like an injected crash.

//!
//! # Durability and chaos
//!
//! With a [`LedgerSpec`] configured, the driver journals every accepted
//! row into a crash-safe append-only ledger and becomes restartable: a
//! new driver incarnation pointed at the same file replays the valid
//! prefix, re-handshakes returning workers under the run's id and a
//! bumped epoch, and re-deals only the missing sources. A [`ChaosPlan`]
//! additionally subjects the node→driver event path to seeded,
//! deterministic delay, duplication, reordering, payload corruption, and
//! one-way partitions — on either transport backend.

mod chaos;
mod cluster;
mod fault;
mod node;
mod socket;
mod transport;
mod wire;
mod worker;

pub use chaos::ChaosPlan;
pub use cluster::{
    ClusterConfig, ClusterConfigError, DistApspOutput, DistEngine, LedgerSpec, NodeStats,
    RetryPolicy, SourcePartition, WatchdogConfig,
};
pub use fault::FaultPlan;
pub use transport::{BindSpec, ConnectRetry, SocketConfig, TransportSpec, WorkerMode};
pub use worker::{run_worker, WorkerOptions, WorkerOutcome};
