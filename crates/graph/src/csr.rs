//! Compressed-sparse-row graph storage.
//!
//! All APSP algorithms in this workspace iterate outgoing adjacency lists in
//! tight inner loops; CSR gives that scan cache-friendly, allocation-free
//! layout. Undirected graphs store each edge in both directions so the same
//! scan works for either [`Direction`].

use crate::error::GraphError;

/// Whether edges are one-way or symmetric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Each edge `(u, v)` is traversable only from `u` to `v`.
    Directed,
    /// Each edge is traversable both ways (stored twice internally).
    Undirected,
}

impl Direction {
    /// True for [`Direction::Directed`].
    #[inline]
    pub fn is_directed(self) -> bool {
        matches!(self, Direction::Directed)
    }
}

/// An immutable weighted graph in compressed-sparse-row form.
///
/// Vertex ids are dense `0..vertex_count() as u32`. Edge weights are `u32`;
/// unit-weight graphs (the paper's complex networks) simply use weight 1
/// everywhere.
///
/// ```
/// use parapsp_graph::{GraphBuilder, Direction};
///
/// let mut b = GraphBuilder::new(4, Direction::Undirected);
/// b.add_edge(0, 1, 1).unwrap();
/// b.add_edge(1, 2, 5).unwrap();
/// let g = b.build();
/// assert_eq!(g.vertex_count(), 4);
/// assert_eq!(g.edge_count(), 2);            // logical edges
/// assert_eq!(g.out_degree(1), 2);           // stored arcs from vertex 1
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    direction: Direction,
    /// `offsets[v]..offsets[v + 1]` indexes `targets`/`weights` for vertex `v`.
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<u32>,
    /// Number of *logical* edges (an undirected edge counts once).
    edge_count: usize,
}

impl CsrGraph {
    /// Assembles a CSR graph from parallel arrays. Intended for use by
    /// [`GraphBuilder`](crate::GraphBuilder) and the generators; validates
    /// structural invariants.
    pub(crate) fn from_parts(
        direction: Direction,
        offsets: Vec<usize>,
        targets: Vec<u32>,
        weights: Vec<u32>,
        edge_count: usize,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        debug_assert_eq!(targets.len(), weights.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        CsrGraph {
            direction,
            offsets,
            targets,
            weights,
            edge_count,
        }
    }

    /// Builds a graph directly from an edge list. Convenience wrapper over
    /// [`GraphBuilder`](crate::GraphBuilder) with duplicates kept as-is.
    pub fn from_edges(
        vertex_count: usize,
        direction: Direction,
        edges: &[(u32, u32, u32)],
    ) -> Result<Self, GraphError> {
        let mut builder = crate::GraphBuilder::new(vertex_count, direction);
        for &(u, v, w) in edges {
            builder.add_edge(u, v, w)?;
        }
        Ok(builder.build())
    }

    /// Builds a unit-weight graph from `(u, v)` pairs.
    pub fn from_unit_edges(
        vertex_count: usize,
        direction: Direction,
        edges: &[(u32, u32)],
    ) -> Result<Self, GraphError> {
        let mut builder = crate::GraphBuilder::new(vertex_count, direction);
        for &(u, v) in edges {
            builder.add_edge(u, v, 1)?;
        }
        Ok(builder.build())
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of logical edges (undirected edges are counted once).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of stored arcs (2× the edge count for undirected graphs).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Directedness of the graph.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Out-degree of `v`: the number of stored arcs leaving it. For
    /// undirected graphs this is the ordinary degree — the quantity the
    /// paper's ordering procedures sort by.
    #[inline]
    pub fn out_degree(&self, v: u32) -> u32 {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as u32
    }

    /// Targets of the arcs leaving `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weights of the arcs leaving `v`, parallel to [`CsrGraph::neighbors`].
    #[inline]
    pub fn weights(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.weights[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterates over `(target, weight)` pairs of the arcs leaving `v`.
    #[inline]
    pub fn out_edges(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights(v).iter().copied())
    }

    /// Iterates over every stored arc as `(from, to, weight)`.
    pub fn arcs(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.vertex_count() as u32)
            .flat_map(move |v| self.out_edges(v).map(move |(t, w)| (v, t, w)))
    }

    /// True when every edge weight is exactly 1.
    pub fn is_unit_weight(&self) -> bool {
        self.weights.iter().all(|&w| w == 1)
    }

    /// The graph with every arc reversed. For undirected graphs this is an
    /// identical copy (useful for tests); for directed graphs it enables
    /// in-degree computations and reverse traversals.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.vertex_count();
        let mut in_deg = vec![0usize; n];
        for &t in &self.targets {
            in_deg[t as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &in_deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0u32; self.targets.len()];
        let mut weights = vec![0u32; self.weights.len()];
        for (from, to, w) in self.arcs() {
            let slot = cursor[to as usize];
            cursor[to as usize] += 1;
            targets[slot] = from;
            weights[slot] = w;
        }
        CsrGraph::from_parts(self.direction, offsets, targets, weights, self.edge_count)
    }

    /// Rebuilds the graph with vertex `v` renamed to `new_id[v]`.
    ///
    /// `new_id` must be a permutation of `0..n`. Random relabeling is used
    /// by the dataset replicas to destroy the id–degree correlation that
    /// preferential-attachment generators introduce (in a raw BA graph the
    /// oldest — lowest — ids are the hubs, which would make the *unordered*
    /// APSP baseline accidentally degree-ordered).
    ///
    /// # Panics
    ///
    /// Panics if `new_id` is not a permutation of `0..vertex_count()`.
    pub fn relabel(&self, new_id: &[u32]) -> CsrGraph {
        let n = self.vertex_count();
        assert_eq!(new_id.len(), n, "relabel permutation has wrong length");
        let mut seen = vec![false; n];
        for &id in new_id {
            assert!(
                (id as usize) < n && !std::mem::replace(&mut seen[id as usize], true),
                "relabel argument is not a permutation"
            );
        }
        let mut builder = crate::GraphBuilder::new(n, self.direction);
        match self.direction {
            Direction::Directed => {
                for (u, v, w) in self.arcs() {
                    builder
                        .add_edge(new_id[u as usize], new_id[v as usize], w)
                        .expect("in range");
                }
            }
            Direction::Undirected => {
                for (u, v, w) in self.logical_edges() {
                    builder
                        .add_edge(new_id[u as usize], new_id[v as usize], w)
                        .expect("in range");
                }
            }
        }
        builder.build()
    }

    /// Iterates over *logical* edges as `(u, v, w)`. For directed graphs
    /// this is the same as [`CsrGraph::arcs`]; for undirected graphs each
    /// edge is reported once, with `u <= v`.
    pub fn logical_edges(&self) -> Vec<(u32, u32, u32)> {
        match self.direction {
            Direction::Directed => self.arcs().collect(),
            Direction::Undirected => self.arcs().filter(|&(u, v, _)| u <= v).collect(),
        }
    }

    /// Sums all out-degrees; equal to [`CsrGraph::arc_count`]. Exposed for
    /// sanity checks in tests and benches.
    pub fn total_degree(&self) -> usize {
        (0..self.vertex_count() as u32)
            .map(|v| self.out_degree(v) as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        CsrGraph::from_edges(
            4,
            Direction::Directed,
            &[(0, 1, 2), (0, 2, 1), (1, 3, 1), (2, 3, 5)],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.arc_count(), 4);
        assert!(g.direction().is_directed());
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.weights(0), &[2, 1]);
        assert_eq!(g.out_edges(2).collect::<Vec<_>>(), vec![(3, 5)]);
    }

    #[test]
    fn undirected_stores_both_arcs() {
        let g = CsrGraph::from_unit_edges(3, Direction::Undirected, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.is_unit_weight());
    }

    #[test]
    fn arcs_iterates_all() {
        let g = diamond();
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs, vec![(0, 1, 2), (0, 2, 1), (1, 3, 1), (2, 3, 5)]);
    }

    #[test]
    fn transpose_reverses_directed_arcs() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.out_degree(3), 2);
        assert_eq!(t.out_degree(0), 0);
        let mut back: Vec<_> = t.arcs().map(|(a, b, w)| (b, a, w)).collect();
        back.sort_unstable();
        let mut orig: Vec<_> = g.arcs().collect();
        orig.sort_unstable();
        assert_eq!(back, orig);
    }

    #[test]
    fn transpose_of_undirected_graph_has_same_adjacency() {
        let g = CsrGraph::from_unit_edges(4, Direction::Undirected, &[(0, 1), (1, 2), (2, 3)])
            .unwrap();
        let t = g.transpose();
        for v in 0..4u32 {
            let mut a = g.neighbors(v).to_vec();
            let mut b = t.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::from_unit_edges(5, Direction::Directed, &[]).unwrap();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for v in 0..5u32 {
            assert_eq!(g.out_degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
        assert_eq!(g.total_degree(), 0);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = CsrGraph::from_unit_edges(2, Direction::Directed, &[(0, 2)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }
}
