//! Error type shared by graph construction and I/O.

use std::fmt;

/// Errors produced while building, generating or parsing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint was `>= vertex_count`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        vertex_count: usize,
    },
    /// A self-loop was rejected by the active policy.
    SelfLoop {
        /// The looping vertex.
        vertex: u32,
    },
    /// A duplicate edge was rejected by the active policy.
    DuplicateEdge {
        /// Source endpoint.
        from: u32,
        /// Target endpoint.
        to: u32,
    },
    /// A generator was asked for an impossible configuration.
    InvalidParameter(String),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                vertex_count,
            } => write!(
                f,
                "vertex {vertex} out of range for a graph with {vertex_count} vertices"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} rejected by policy")
            }
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge ({from}, {to}) rejected by policy")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(err) => write!(f, "I/O error: {err}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            vertex_count: 5,
        };
        assert!(e.to_string().contains("vertex 9"));
        assert!(e.to_string().contains("5 vertices"));

        let e = GraphError::Parse {
            line: 3,
            message: "expected integer".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }
}
