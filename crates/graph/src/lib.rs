//! Graph substrate for the ParAPSP reproduction.
//!
//! Provides the compressed-sparse-row graph representation the APSP
//! algorithms run on, plus everything needed to *obtain* graphs:
//!
//! * [`builder::GraphBuilder`] — incremental edge-list construction with
//!   deduplication and self-loop policies,
//! * [`generate`] — seeded random-graph models (Erdős–Rényi, the scale-free
//!   Barabási–Albert model that the paper's datasets resemble,
//!   Watts–Strogatz small-world) and deterministic fixtures,
//! * [`io`] — SNAP / KONECT edge-list parsing and writing, so the real
//!   evaluation datasets can be dropped in when available,
//! * [`degree`] — degree tables and distribution statistics (paper Fig. 3).
//!
//! Weights are `u32` with [`INF`] (`u32::MAX`) as "unreachable"; complex
//! network analysis in the paper uses unit weights throughout.

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod degree;
pub mod error;
pub mod generate;
pub mod io;
pub mod transform;

pub use builder::{DuplicatePolicy, GraphBuilder};
pub use csr::{CsrGraph, Direction};
pub use error::GraphError;

/// Infinite distance marker: no path.
pub const INF: u32 = u32::MAX;
