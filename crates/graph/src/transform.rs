//! Graph transformations: induced subgraphs, largest-component extraction
//! and k-core decomposition.
//!
//! Published APSP evaluations (including the datasets in the paper's
//! Table 2) conventionally work on the largest connected component, since
//! cross-component distances are all ∞. These helpers let users prepare
//! real downloaded datasets the same way.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Direction};

/// The subgraph induced by `vertices` (ids into the original graph).
///
/// Returns the new graph and the mapping `new_id -> original_id` (the
/// order of `vertices`, deduplicated, first occurrence wins).
///
/// Edges are kept when **both** endpoints are selected; weights and
/// directedness are preserved.
pub fn induced_subgraph(graph: &CsrGraph, vertices: &[u32]) -> (CsrGraph, Vec<u32>) {
    let n = graph.vertex_count();
    let mut new_id = vec![u32::MAX; n];
    let mut originals: Vec<u32> = Vec::with_capacity(vertices.len());
    for &v in vertices {
        assert!((v as usize) < n, "vertex {v} out of range");
        if new_id[v as usize] == u32::MAX {
            new_id[v as usize] = originals.len() as u32;
            originals.push(v);
        }
    }
    let mut builder = GraphBuilder::new(originals.len(), graph.direction());
    let edges: Vec<(u32, u32, u32)> = match graph.direction() {
        Direction::Directed => graph.arcs().collect(),
        Direction::Undirected => graph.logical_edges(),
    };
    for (u, v, w) in edges {
        let (nu, nv) = (new_id[u as usize], new_id[v as usize]);
        if nu != u32::MAX && nv != u32::MAX {
            builder.add_edge(nu, nv, w).expect("in range");
        }
    }
    (builder.build(), originals)
}

/// Weakly connected component ids (direction ignored), densified in order
/// of first appearance, plus the component count.
pub fn component_ids(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let n = graph.vertex_count();
    // Build undirected adjacency once (directed graphs need in-arcs too).
    let reverse = if graph.direction().is_directed() {
        Some(graph.transpose())
    } else {
        None
    };
    let mut ids = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    let mut next = 0u32;
    for start in 0..n as u32 {
        if ids[start as usize] != u32::MAX {
            continue;
        }
        ids[start as usize] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let mut visit = |v: u32| {
                if ids[v as usize] == u32::MAX {
                    ids[v as usize] = next;
                    queue.push_back(v);
                }
            };
            for &v in graph.neighbors(u) {
                visit(v);
            }
            if let Some(rev) = &reverse {
                for &v in rev.neighbors(u) {
                    visit(v);
                }
            }
        }
        next += 1;
    }
    (ids, next as usize)
}

/// Extracts the largest weakly connected component. Returns the component
/// as a graph plus the mapping `new_id -> original_id`.
pub fn largest_connected_component(graph: &CsrGraph) -> (CsrGraph, Vec<u32>) {
    let n = graph.vertex_count();
    if n == 0 {
        return (graph.clone(), Vec::new());
    }
    let (ids, count) = component_ids(graph);
    let mut sizes = vec![0usize; count];
    for &c in &ids {
        sizes[c as usize] += 1;
    }
    let biggest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i as u32)
        .expect("non-empty");
    let members: Vec<u32> = (0..n as u32).filter(|&v| ids[v as usize] == biggest).collect();
    induced_subgraph(graph, &members)
}

/// Core number of every vertex (Batagelj–Zaverśnik bucket peeling — a
/// cousin of the paper's bounded-key bucket sorts). The core number of `v`
/// is the largest `k` such that `v` belongs to a subgraph where every
/// vertex has degree ≥ `k`. Treats the graph as undirected (uses stored
/// arcs as adjacency).
pub fn core_numbers(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|v| graph.out_degree(v)).collect();
    let max_deg = *degree.iter().max().unwrap() as usize;

    // Bucket vertices by current degree.
    let mut bins: Vec<usize> = vec![0; max_deg + 2];
    for &d in &degree {
        bins[d as usize] += 1;
    }
    let mut start = 0usize;
    for bin in bins.iter_mut() {
        let count = *bin;
        *bin = start;
        start += count;
    }
    let mut pos = vec![0usize; n]; // vertex -> index in `vert`
    let mut vert = vec![0u32; n]; // degree-sorted vertices
    {
        let mut cursor = bins.clone();
        for v in 0..n {
            pos[v] = cursor[degree[v] as usize];
            vert[pos[v]] = v as u32;
            cursor[degree[v] as usize] += 1;
        }
    }

    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize];
        for &u in graph.neighbors(v) {
            let u = u as usize;
            if degree[u] > degree[v as usize] {
                // Move u one bucket down: swap it with the first vertex of
                // its current bucket, then shrink the bucket.
                let du = degree[u] as usize;
                let pu = pos[u];
                let pw = bins[du];
                let w = vert[pw];
                if u as u32 != w {
                    vert.swap(pu, pw);
                    pos[u] = pw;
                    pos[w as usize] = pu;
                }
                bins[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// The `k`-core: the maximal subgraph where every vertex has degree ≥ `k`.
/// Returns the subgraph and the `new_id -> original_id` mapping (empty
/// graph when no vertex qualifies).
pub fn k_core(graph: &CsrGraph, k: u32) -> (CsrGraph, Vec<u32>) {
    let cores = core_numbers(graph);
    let members: Vec<u32> = (0..graph.vertex_count() as u32)
        .filter(|&v| cores[v as usize] >= k)
        .collect();
    induced_subgraph(graph, &members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{barabasi_albert, complete_graph, path_graph, star_graph, WeightSpec};

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = path_graph(5, Direction::Undirected); // 0-1-2-3-4
        let (sub, map) = induced_subgraph(&g, &[1, 2, 4]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(map, vec![1, 2, 4]);
        assert_eq!(sub.edge_count(), 1); // only 1-2 survives
        assert_eq!(sub.neighbors(0), &[1]);
        assert!(sub.neighbors(2).is_empty());
    }

    #[test]
    fn induced_subgraph_deduplicates_selection() {
        let g = complete_graph(4);
        let (sub, map) = induced_subgraph(&g, &[2, 2, 0]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(map, vec![2, 0]);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn directed_subgraph_preserves_orientation_and_weights() {
        let g = CsrGraph::from_edges(4, Direction::Directed, &[(0, 1, 5), (1, 0, 2), (2, 3, 9)])
            .unwrap();
        let (sub, map) = induced_subgraph(&g, &[0, 1]);
        assert_eq!(map, vec![0, 1]);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.weights(0), &[5]);
        assert_eq!(sub.weights(1), &[2]);
    }

    #[test]
    fn lcc_of_two_components() {
        let g = CsrGraph::from_unit_edges(
            7,
            Direction::Undirected,
            &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 3), (5, 6)],
        )
        .unwrap();
        let (lcc, map) = largest_connected_component(&g);
        assert_eq!(lcc.vertex_count(), 4);
        assert_eq!(map, vec![3, 4, 5, 6]);
        assert_eq!(lcc.edge_count(), 4);
    }

    #[test]
    fn lcc_of_directed_graph_uses_weak_connectivity() {
        // 0 -> 1 <- 2 is weakly connected even though unreachable pairwise.
        let g = CsrGraph::from_unit_edges(4, Direction::Directed, &[(0, 1), (2, 1)]).unwrap();
        let (lcc, map) = largest_connected_component(&g);
        assert_eq!(lcc.vertex_count(), 3);
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn lcc_of_connected_graph_is_identity_shaped() {
        let g = barabasi_albert(300, 3, WeightSpec::Unit, 3).unwrap();
        let (lcc, map) = largest_connected_component(&g);
        assert_eq!(lcc.vertex_count(), 300); // BA graphs are connected
        assert_eq!(map.len(), 300);
        assert_eq!(lcc.edge_count(), g.edge_count());
    }

    #[test]
    fn component_ids_counts() {
        let g = CsrGraph::from_unit_edges(5, Direction::Undirected, &[(0, 1), (2, 3)]).unwrap();
        let (ids, count) = component_ids(&g);
        assert_eq!(count, 3);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[2], ids[3]);
        assert_ne!(ids[0], ids[2]);
        assert_ne!(ids[4], ids[0]);
    }

    #[test]
    fn core_numbers_of_known_graphs() {
        // Complete graph: every core number = n - 1.
        assert!(core_numbers(&complete_graph(5)).iter().all(|&c| c == 4));
        // Star: hub and leaves all have core number 1.
        assert!(core_numbers(&star_graph(6)).iter().all(|&c| c == 1));
        // Path: interior 1, endpoints 1.
        assert!(core_numbers(&path_graph(4, Direction::Undirected))
            .iter()
            .all(|&c| c == 1));
        // Triangle with pendant: triangle is 2-core, pendant is 1.
        let g = CsrGraph::from_unit_edges(
            4,
            Direction::Undirected,
            &[(0, 1), (1, 2), (2, 0), (0, 3)],
        )
        .unwrap();
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1]);
    }

    #[test]
    fn k_core_extraction() {
        let g = CsrGraph::from_unit_edges(
            5,
            Direction::Undirected,
            &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4)],
        )
        .unwrap();
        let (core2, map) = k_core(&g, 2);
        assert_eq!(map, vec![0, 1, 2]);
        assert_eq!(core2.edge_count(), 3);
        let (core3, map3) = k_core(&g, 3);
        assert!(map3.is_empty());
        assert_eq!(core3.vertex_count(), 0);
    }

    #[test]
    fn ba_core_numbers_bounded_by_m() {
        // Every BA vertex arrives with m edges, so the graph is an m-core
        // but no deeper peeling survives below m.
        let g = barabasi_albert(400, 3, WeightSpec::Unit, 12).unwrap();
        let cores = core_numbers(&g);
        assert!(cores.iter().all(|&c| c >= 3));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = CsrGraph::from_unit_edges(0, Direction::Undirected, &[]).unwrap();
        assert!(core_numbers(&g).is_empty());
        let (lcc, map) = largest_connected_component(&g);
        assert_eq!(lcc.vertex_count(), 0);
        assert!(map.is_empty());
    }

    use crate::CsrGraph;
}
