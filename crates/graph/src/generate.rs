//! Seeded random-graph generators and deterministic fixtures.
//!
//! The paper evaluates on real-world scale-free networks from SNAP/KONECT.
//! Those datasets are not redistributable, so the reproduction generates
//! *synthetic replicas* whose degree distribution has the property every
//! measured effect depends on: a power law with few hubs and many leaves
//! (Barabási–Albert). Erdős–Rényi and Watts–Strogatz are provided because
//! Peng et al. evaluated on them and they make useful contrast workloads.
//!
//! All generators are deterministic in `(parameters, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Direction};
use crate::error::GraphError;

/// Edge weights attached by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightSpec {
    /// Every edge has weight 1 (the paper's setting).
    Unit,
    /// Weights drawn uniformly from `lo..=hi`.
    Uniform {
        /// Smallest possible weight (must be ≥ 1).
        lo: u32,
        /// Largest possible weight.
        hi: u32,
    },
}

impl WeightSpec {
    fn sample(&self, rng: &mut StdRng) -> Result<u32, GraphError> {
        match *self {
            WeightSpec::Unit => Ok(1),
            WeightSpec::Uniform { lo, hi } => {
                if lo == 0 || lo > hi {
                    return Err(GraphError::InvalidParameter(format!(
                        "uniform weight range {lo}..={hi} must satisfy 1 <= lo <= hi"
                    )));
                }
                Ok(rng.random_range(lo..=hi))
            }
        }
    }
}

/// Erdős–Rényi G(n, m): exactly `m` distinct edges sampled uniformly among
/// all vertex pairs (no self-loops, no duplicates).
pub fn erdos_renyi_gnm(
    n: usize,
    m: usize,
    direction: Direction,
    weights: WeightSpec,
    seed: u64,
) -> Result<CsrGraph, GraphError> {
    if n < 2 && m > 0 {
        return Err(GraphError::InvalidParameter(
            "G(n, m) needs at least two vertices to place an edge".into(),
        ));
    }
    let max_edges = match direction {
        Direction::Directed => n.saturating_mul(n.saturating_sub(1)),
        Direction::Undirected => n.saturating_mul(n.saturating_sub(1)) / 2,
    };
    if m > max_edges {
        return Err(GraphError::InvalidParameter(format!(
            "cannot place {m} distinct edges in a graph with at most {max_edges}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n, direction);
    builder.reserve(m);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m * 2);
    while builder.edge_count() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = match direction {
            Direction::Directed => (u, v),
            Direction::Undirected => (u.min(v), u.max(v)),
        };
        if seen.insert(key) {
            builder.add_edge(u, v, weights.sample(&mut rng)?)?;
        }
    }
    Ok(builder.build())
}

/// Erdős–Rényi G(n, p): each possible edge present independently with
/// probability `p`, using geometric skipping so the cost is proportional to
/// the number of edges produced.
pub fn erdos_renyi_gnp(
    n: usize,
    p: f64,
    direction: Direction,
    weights: WeightSpec,
    seed: u64,
) -> Result<CsrGraph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter(format!(
            "edge probability {p} outside [0, 1]"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n, direction);
    if p == 0.0 || n < 2 {
        return Ok(builder.build());
    }
    // Enumerate candidate pairs lexicographically and skip ahead by
    // geometrically distributed gaps.
    let total: u64 = match direction {
        Direction::Directed => (n as u64) * (n as u64 - 1),
        Direction::Undirected => (n as u64) * (n as u64 - 1) / 2,
    };
    let log_1p = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let gap = if p >= 1.0 {
            0
        } else {
            let u: f64 = rng.random::<f64>();
            ((1.0 - u).ln() / log_1p).floor() as u64
        };
        idx = idx.saturating_add(gap);
        if idx >= total {
            break;
        }
        let (u, v) = match direction {
            Direction::Directed => {
                // idx over ordered pairs (u, v), u != v.
                let u = idx / (n as u64 - 1);
                let mut v = idx % (n as u64 - 1);
                if v >= u {
                    v += 1;
                }
                (u as u32, v as u32)
            }
            Direction::Undirected => {
                // idx over pairs u < v via triangular numbers.
                let mut u = 0u64;
                let mut rem = idx;
                let mut row = n as u64 - 1;
                while rem >= row {
                    rem -= row;
                    u += 1;
                    row -= 1;
                }
                (u as u32, (u + 1 + rem) as u32)
            }
        };
        builder.add_edge(u, v, weights.sample(&mut rng)?)?;
        idx += 1;
    }
    Ok(builder.build())
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex with `m` edges to existing vertices chosen
/// proportionally to their degree. Produces the scale-free (power-law)
/// degree distribution the paper's optimization exploits.
pub fn barabasi_albert(
    n: usize,
    m: usize,
    weights: WeightSpec,
    seed: u64,
) -> Result<CsrGraph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameter(
            "Barabási–Albert needs m >= 1 edges per new vertex".into(),
        ));
    }
    if n <= m {
        return Err(GraphError::InvalidParameter(format!(
            "Barabási–Albert needs n > m (got n = {n}, m = {m})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n, Direction::Undirected);
    builder.reserve(m * n);
    // `endpoints` holds one entry per half-edge, so sampling uniformly from
    // it implements degree-proportional selection.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * m * n);

    // Seed graph: clique on the first m + 1 vertices.
    let seed_size = m + 1;
    for u in 0..seed_size as u32 {
        for v in (u + 1)..seed_size as u32 {
            builder.add_edge(u, v, weights.sample(&mut rng)?)?;
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    // `m` is small, so a Vec with linear membership check is both faster
    // than a HashSet and — unlike HashSet iteration — deterministic.
    let mut chosen: Vec<u32> = Vec::with_capacity(m);
    for new in seed_size as u32..n as u32 {
        chosen.clear();
        while chosen.len() < m {
            let pick = endpoints[rng.random_range(0..endpoints.len())];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            builder.add_edge(new, t, weights.sample(&mut rng)?)?;
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    Ok(builder.build())
}

/// Directed scale-free graph: generates an undirected Barabási–Albert graph
/// and orients each edge, keeping both directions with probability
/// `reciprocity` and a single uniformly random direction otherwise.
///
/// This matches the character of the paper's directed datasets
/// (ego-Twitter, sx-superuser): heavy-tailed in- *and* out-degrees with a
/// tunable fraction of mutual links.
pub fn scale_free_directed(
    n: usize,
    m: usize,
    reciprocity: f64,
    weights: WeightSpec,
    seed: u64,
) -> Result<CsrGraph, GraphError> {
    if !(0.0..=1.0).contains(&reciprocity) {
        return Err(GraphError::InvalidParameter(format!(
            "reciprocity {reciprocity} outside [0, 1]"
        )));
    }
    let base = barabasi_albert(n, m, WeightSpec::Unit, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut builder = GraphBuilder::new(n, Direction::Directed);
    for (u, v, _) in base.logical_edges() {
        if rng.random_bool(reciprocity) {
            let w = weights.sample(&mut rng)?;
            builder.add_edge(u, v, w)?;
            builder.add_edge(v, u, w)?;
        } else if rng.random_bool(0.5) {
            builder.add_edge(u, v, weights.sample(&mut rng)?)?;
        } else {
            builder.add_edge(v, u, weights.sample(&mut rng)?)?;
        }
    }
    Ok(builder.build())
}

/// Configuration model: a random simple graph with (approximately) a
/// prescribed degree sequence, built by pairing half-edge "stubs" and
/// erasing self-loops and duplicate pairings (the standard *erased*
/// configuration model — the realized degrees can fall slightly short of
/// the request, which is reported via the returned graph's own degrees).
///
/// Useful for building replicas that match a measured degree sequence
/// exactly in distribution rather than via a growth model.
///
/// # Errors
///
/// Rejects sequences whose sum is odd (no pairing exists) and vertices
/// demanding degree ≥ n.
pub fn configuration_model(degrees: &[u32], seed: u64) -> Result<CsrGraph, GraphError> {
    let n = degrees.len();
    let total: u64 = degrees.iter().map(|&d| d as u64).sum();
    if !total.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter(
            "configuration model needs an even degree sum".into(),
        ));
    }
    if let Some((v, &d)) = degrees.iter().enumerate().find(|&(_, &d)| d as usize >= n) {
        return Err(GraphError::InvalidParameter(format!(
            "vertex {v} demands degree {d} >= n = {n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<u32> = Vec::with_capacity(total as usize);
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as u32, d as usize));
    }
    // Fisher–Yates shuffle, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.random_range(0..=i);
        stubs.swap(i, j);
    }
    let mut builder = GraphBuilder::new(n, Direction::Undirected)
        .with_duplicate_policy(crate::DuplicatePolicy::Ignore);
    for pair in stubs.chunks_exact(2) {
        // Self-loops and duplicates are erased (dropped by the builder).
        builder.add_edge(pair[0], pair[1], 1)?;
    }
    Ok(builder.build())
}

/// Watts–Strogatz small-world graph: ring lattice where each vertex links to
/// its `k / 2` nearest neighbors on each side, then each edge is rewired to
/// a random target with probability `beta`.
pub fn watts_strogatz(
    n: usize,
    k: usize,
    beta: f64,
    weights: WeightSpec,
    seed: u64,
) -> Result<CsrGraph, GraphError> {
    if !k.is_multiple_of(2) || k == 0 {
        return Err(GraphError::InvalidParameter(format!(
            "Watts–Strogatz needs even k >= 2 (got {k})"
        )));
    }
    if k >= n {
        return Err(GraphError::InvalidParameter(format!(
            "Watts–Strogatz needs k < n (got k = {k}, n = {n})"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter(format!(
            "rewiring probability {beta} outside [0, 1]"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: HashSet<(u32, u32)> = HashSet::with_capacity(n * k / 2);
    let norm = |u: u32, v: u32| (u.min(v), u.max(v));
    for u in 0..n as u32 {
        for j in 1..=(k / 2) as u32 {
            let v = (u + j) % n as u32;
            edges.insert(norm(u, v));
        }
    }
    // Rewire: iterate the original lattice edges deterministically.
    let mut lattice: Vec<(u32, u32)> = Vec::with_capacity(n * k / 2);
    for u in 0..n as u32 {
        for j in 1..=(k / 2) as u32 {
            lattice.push(norm(u, (u + j) % n as u32));
        }
    }
    for (u, v) in lattice {
        if rng.random_bool(beta) && edges.contains(&(u, v)) {
            // Try a handful of times to find a fresh target.
            for _ in 0..32 {
                let w = rng.random_range(0..n as u32);
                if w != u && !edges.contains(&norm(u, w)) {
                    edges.remove(&(u, v));
                    edges.insert(norm(u, w));
                    break;
                }
            }
        }
    }
    let mut builder = GraphBuilder::new(n, Direction::Undirected);
    let mut sorted: Vec<(u32, u32)> = edges.into_iter().collect();
    sorted.sort_unstable(); // determinism independent of HashSet iteration
    for (u, v) in sorted {
        builder.add_edge(u, v, weights.sample(&mut rng)?)?;
    }
    Ok(builder.build())
}

/// R-MAT (recursive matrix) generator, the Graph500 workhorse: each edge
/// picks its endpoints by recursively descending into one of four adjacency
/// matrix quadrants with probabilities `(a, b, c, d)`. Skewed probabilities
/// (the classic `a = 0.57, b = c = 0.19, d = 0.05`) yield power-law-ish
/// degree distributions; uniform probabilities approach Erdős–Rényi.
///
/// Produces a directed graph with `2^scale` vertices and about
/// `edge_factor · 2^scale` edges (self-loops and duplicates are dropped, as
/// in Graph500's kernel-1 preprocessing).
pub fn rmat(
    scale: u32,
    edge_factor: usize,
    probs: (f64, f64, f64, f64),
    weights: WeightSpec,
    seed: u64,
) -> Result<CsrGraph, GraphError> {
    let (a, b, c, d) = probs;
    let sum = a + b + c + d;
    if !(0.999..=1.001).contains(&sum) || [a, b, c, d].iter().any(|&p| p < 0.0) {
        return Err(GraphError::InvalidParameter(format!(
            "R-MAT probabilities ({a}, {b}, {c}, {d}) must be non-negative and sum to 1"
        )));
    }
    if scale == 0 || scale > 30 {
        return Err(GraphError::InvalidParameter(format!(
            "R-MAT scale {scale} outside 1..=30"
        )));
    }
    let n = 1usize << scale;
    let m = edge_factor.saturating_mul(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder =
        GraphBuilder::new(n, Direction::Directed).with_duplicate_policy(crate::DuplicatePolicy::Ignore);
    builder.reserve(m);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.random();
            if r < a {
                // top-left quadrant: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        builder.add_edge(u, v, weights.sample(&mut rng)?)?;
    }
    Ok(builder.build())
}

/// A path `0 — 1 — … — (n-1)` with unit weights.
pub fn path_graph(n: usize, direction: Direction) -> CsrGraph {
    let mut builder = GraphBuilder::new(n, direction);
    for u in 1..n as u32 {
        builder.add_edge(u - 1, u, 1).expect("in range");
    }
    builder.build()
}

/// A cycle over `n >= 3` vertices with unit weights.
pub fn cycle_graph(n: usize, direction: Direction) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut builder = GraphBuilder::new(n, direction);
    for u in 0..n as u32 {
        builder.add_edge(u, (u + 1) % n as u32, 1).expect("in range");
    }
    builder.build()
}

/// A star: vertex 0 connected to all others (the most extreme hub).
pub fn star_graph(n: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(n, Direction::Undirected);
    for v in 1..n as u32 {
        builder.add_edge(0, v, 1).expect("in range");
    }
    builder.build()
}

/// The complete graph on `n` vertices with unit weights.
pub fn complete_graph(n: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(n, Direction::Undirected);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            builder.add_edge(u, v, 1).expect("in range");
        }
    }
    builder.build()
}

/// A `rows × cols` 4-neighbor grid with unit weights.
pub fn grid_graph(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut builder = GraphBuilder::new(n, Direction::Undirected);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_edge(id(r, c), id(r, c + 1), 1).expect("in range");
            }
            if r + 1 < rows {
                builder.add_edge(id(r, c), id(r + 1, c), 1).expect("in range");
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree;

    #[test]
    fn gnm_has_exact_edge_count_and_is_deterministic() {
        let a = erdos_renyi_gnm(100, 350, Direction::Undirected, WeightSpec::Unit, 7).unwrap();
        let b = erdos_renyi_gnm(100, 350, Direction::Undirected, WeightSpec::Unit, 7).unwrap();
        assert_eq!(a.edge_count(), 350);
        assert_eq!(a, b);
        let c = erdos_renyi_gnm(100, 350, Direction::Undirected, WeightSpec::Unit, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_directed_allows_both_orientations() {
        let g = erdos_renyi_gnm(10, 90, Direction::Directed, WeightSpec::Unit, 1).unwrap();
        assert_eq!(g.edge_count(), 90); // the complete directed graph
    }

    #[test]
    fn gnm_rejects_impossible_request() {
        assert!(erdos_renyi_gnm(4, 7, Direction::Undirected, WeightSpec::Unit, 0).is_err());
        assert!(erdos_renyi_gnm(1, 1, Direction::Directed, WeightSpec::Unit, 0).is_err());
    }

    #[test]
    fn gnp_density_is_plausible() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, Direction::Undirected, WeightSpec::Unit, 42).unwrap();
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let empty = erdos_renyi_gnp(50, 0.0, Direction::Directed, WeightSpec::Unit, 0).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi_gnp(20, 1.0, Direction::Undirected, WeightSpec::Unit, 0).unwrap();
        assert_eq!(full.edge_count(), 20 * 19 / 2);
        let full_d = erdos_renyi_gnp(12, 1.0, Direction::Directed, WeightSpec::Unit, 0).unwrap();
        assert_eq!(full_d.edge_count(), 12 * 11);
    }

    #[test]
    fn ba_degree_distribution_is_heavy_tailed() {
        let g = barabasi_albert(3000, 3, WeightSpec::Unit, 99).unwrap();
        assert_eq!(g.edge_count(), 6 + (3000 - 4) * 3); // C(4,2) clique + m per newcomer
        let degs = degree::out_degrees(&g);
        let max = *degs.iter().max().unwrap();
        let min = *degs.iter().min().unwrap();
        assert!(min >= 3);
        assert!(max > 60, "expected a hub, max degree was {max}");
        // Most vertices sit near the minimum degree — the scale-free shape.
        let near_min = degs.iter().filter(|&&d| d <= 6).count();
        assert!(near_min > 3000 / 2);
    }

    #[test]
    fn ba_rejects_bad_parameters() {
        assert!(barabasi_albert(5, 0, WeightSpec::Unit, 0).is_err());
        assert!(barabasi_albert(3, 3, WeightSpec::Unit, 0).is_err());
    }

    #[test]
    fn directed_scale_free_has_heavy_out_degrees() {
        let g = scale_free_directed(2000, 3, 0.3, WeightSpec::Unit, 5).unwrap();
        assert!(g.direction().is_directed());
        let degs = degree::out_degrees(&g);
        let max = *degs.iter().max().unwrap();
        assert!(max > 30, "expected an out-hub, max out-degree was {max}");
    }

    #[test]
    fn rmat_is_skewed_and_deterministic() {
        let g = rmat(12, 8, (0.57, 0.19, 0.19, 0.05), WeightSpec::Unit, 3).unwrap();
        assert_eq!(g.vertex_count(), 4096);
        assert!(g.direction().is_directed());
        // Duplicates dropped, so fewer than the nominal edge count.
        assert!(g.edge_count() <= 8 * 4096);
        assert!(g.edge_count() > 4 * 4096, "too many collisions");
        // Skewed quadrants make low-id vertices hubs.
        let degs = degree::out_degrees(&g);
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().map(|&d| d as f64).sum::<f64>() / degs.len() as f64;
        assert!(max as f64 > mean * 10.0, "max {max}, mean {mean:.1}");
        assert_eq!(g, rmat(12, 8, (0.57, 0.19, 0.19, 0.05), WeightSpec::Unit, 3).unwrap());
    }

    #[test]
    fn rmat_rejects_bad_parameters() {
        assert!(rmat(0, 8, (0.25, 0.25, 0.25, 0.25), WeightSpec::Unit, 0).is_err());
        assert!(rmat(40, 8, (0.25, 0.25, 0.25, 0.25), WeightSpec::Unit, 0).is_err());
        assert!(rmat(5, 8, (0.5, 0.5, 0.5, 0.5), WeightSpec::Unit, 0).is_err()); // sum 2
        assert!(rmat(5, 8, (1.2, -0.2, 0.0, 0.0), WeightSpec::Unit, 0).is_err());
    }

    #[test]
    fn configuration_model_tracks_degree_sequence() {
        // Power-law-ish sequence with an even sum.
        let mut degrees: Vec<u32> = (0..600u32).map(|i| 2 + (i % 7)).collect();
        let sum: u64 = degrees.iter().map(|&d| d as u64).sum();
        if sum % 2 == 1 {
            degrees[0] += 1;
        }
        let g = configuration_model(&degrees, 5).unwrap();
        assert_eq!(g.vertex_count(), 600);
        // The erased model loses a few stubs; realized degrees never exceed
        // the request and stay close in aggregate.
        let realized = degree::out_degrees(&g);
        for (v, (&want, &got)) in degrees.iter().zip(&realized).enumerate() {
            assert!(got <= want, "vertex {v}: {got} > requested {want}");
        }
        let realized_sum: u64 = realized.iter().map(|&d| d as u64).sum();
        let requested: u64 = degrees.iter().map(|&d| d as u64).sum();
        assert!(realized_sum as f64 > requested as f64 * 0.95);
        // Deterministic in the seed.
        assert_eq!(g, configuration_model(&degrees, 5).unwrap());
        assert_ne!(g, configuration_model(&degrees, 6).unwrap());
    }

    #[test]
    fn configuration_model_rejects_bad_sequences() {
        assert!(configuration_model(&[1, 1, 1], 0).is_err()); // odd sum
        assert!(configuration_model(&[4, 1, 1, 2], 0).is_err()); // degree >= n
        let empty = configuration_model(&[], 0).unwrap();
        assert_eq!(empty.vertex_count(), 0);
    }

    #[test]
    fn watts_strogatz_zero_beta_is_lattice() {
        let g = watts_strogatz(20, 4, 0.0, WeightSpec::Unit, 0).unwrap();
        assert_eq!(g.edge_count(), 20 * 2);
        for v in 0..20u32 {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn watts_strogatz_rewiring_keeps_edge_count() {
        let g = watts_strogatz(200, 6, 0.3, WeightSpec::Unit, 3).unwrap();
        assert_eq!(g.edge_count(), 200 * 3);
    }

    #[test]
    fn watts_strogatz_rejects_bad_parameters() {
        assert!(watts_strogatz(10, 3, 0.1, WeightSpec::Unit, 0).is_err()); // odd k
        assert!(watts_strogatz(4, 4, 0.1, WeightSpec::Unit, 0).is_err()); // k >= n
        assert!(watts_strogatz(10, 4, 1.5, WeightSpec::Unit, 0).is_err()); // bad beta
    }

    #[test]
    fn uniform_weights_respect_range() {
        let g = erdos_renyi_gnm(
            60,
            200,
            Direction::Undirected,
            WeightSpec::Uniform { lo: 2, hi: 9 },
            1,
        )
        .unwrap();
        for (_, _, w) in g.arcs() {
            assert!((2..=9).contains(&w));
        }
    }

    #[test]
    fn uniform_weight_validation() {
        assert!(erdos_renyi_gnm(
            10,
            5,
            Direction::Directed,
            WeightSpec::Uniform { lo: 0, hi: 3 },
            0
        )
        .is_err());
        assert!(erdos_renyi_gnm(
            10,
            5,
            Direction::Directed,
            WeightSpec::Uniform { lo: 5, hi: 3 },
            0
        )
        .is_err());
    }

    #[test]
    fn fixtures_have_expected_shapes() {
        let p = path_graph(5, Direction::Undirected);
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.out_degree(0), 1);
        assert_eq!(p.out_degree(2), 2);

        let c = cycle_graph(6, Direction::Directed);
        assert_eq!(c.edge_count(), 6);
        for v in 0..6u32 {
            assert_eq!(c.out_degree(v), 1);
        }

        let s = star_graph(10);
        assert_eq!(s.out_degree(0), 9);
        assert_eq!(s.out_degree(5), 1);

        let k = complete_graph(6);
        assert_eq!(k.edge_count(), 15);
        for v in 0..6u32 {
            assert_eq!(k.out_degree(v), 5);
        }

        let g = grid_graph(3, 4);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.out_degree(0), 2); // corner
    }
}
