//! Degree tables and distribution statistics.
//!
//! The paper's ordering procedures consume a degree array (`degree[v]`), and
//! its Figure 3 plots the degree distribution of WordNet to explain the
//! lock-contention pathology of ParBuckets. This module computes both.

use crate::csr::CsrGraph;

/// Out-degrees of every vertex — the key array every ordering procedure
/// sorts by. For undirected graphs this is the ordinary degree.
pub fn out_degrees(graph: &CsrGraph) -> Vec<u32> {
    (0..graph.vertex_count() as u32)
        .map(|v| graph.out_degree(v))
        .collect()
}

/// In-degrees, computed in one pass over the arcs.
pub fn in_degrees(graph: &CsrGraph) -> Vec<u32> {
    let mut degs = vec![0u32; graph.vertex_count()];
    for (_, to, _) in graph.arcs() {
        degs[to as usize] += 1;
    }
    degs
}

/// `(min, max)` out-degree, or `None` for an empty graph. Both bounds are
/// needed by the ParBuckets bucket-index formula (paper Eq. 1).
pub fn degree_bounds(degrees: &[u32]) -> Option<(u32, u32)> {
    let mut iter = degrees.iter().copied();
    let first = iter.next()?;
    let mut min = first;
    let mut max = first;
    for d in iter {
        min = min.min(d);
        max = max.max(d);
    }
    Some((min, max))
}

/// Exact degree histogram: `histogram[d]` = number of vertices with degree
/// `d`, for `d` in `0..=max_degree` (paper Fig. 3).
pub fn degree_histogram(degrees: &[u32]) -> Vec<usize> {
    let max = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0usize; max + 1];
    for &d in degrees {
        hist[d as usize] += 1;
    }
    hist
}

/// Logarithmically binned degree histogram as `(bin_lower_bound, count)`
/// pairs — the standard way to visualise a power law. Bin `i` covers
/// degrees `[2^i, 2^(i+1))`; degree 0 gets its own bin labelled 0.
pub fn log_binned_histogram(degrees: &[u32]) -> Vec<(u32, usize)> {
    let mut zero = 0usize;
    let mut bins: Vec<usize> = Vec::new();
    for &d in degrees {
        if d == 0 {
            zero += 1;
            continue;
        }
        let bin = (u32::BITS - 1 - d.leading_zeros()) as usize; // floor(log2 d)
        if bins.len() <= bin {
            bins.resize(bin + 1, 0);
        }
        bins[bin] += 1;
    }
    let mut out = Vec::new();
    if zero > 0 {
        out.push((0, zero));
    }
    for (i, &count) in bins.iter().enumerate() {
        if count > 0 {
            out.push((1u32 << i, count));
        }
    }
    out
}

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: u32,
    /// Largest degree.
    pub max: u32,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even counts).
    pub median: u32,
    /// Fraction of vertices with degree ≥ 1% of the maximum — the set the
    /// ParMax procedure inserts in parallel (paper §4.2).
    pub above_one_percent_of_max: f64,
}

/// Computes [`DegreeStats`] for a non-empty degree sequence.
pub fn degree_stats(degrees: &[u32]) -> Option<DegreeStats> {
    if degrees.is_empty() {
        return None;
    }
    let (min, max) = degree_bounds(degrees)?;
    let mean = degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len() as f64;
    let mut sorted = degrees.to_vec();
    sorted.sort_unstable();
    let median = sorted[(sorted.len() - 1) / 2];
    let threshold = max as f64 * 0.01;
    let above = degrees.iter().filter(|&&d| d as f64 >= threshold).count();
    Some(DegreeStats {
        min,
        max,
        mean,
        median,
        above_one_percent_of_max: above as f64 / degrees.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Direction;
    use crate::generate::{barabasi_albert, star_graph, WeightSpec};
    use crate::CsrGraph;

    #[test]
    fn out_and_in_degrees_directed() {
        let g = CsrGraph::from_unit_edges(4, Direction::Directed, &[(0, 1), (0, 2), (3, 0)])
            .unwrap();
        assert_eq!(out_degrees(&g), vec![2, 0, 0, 1]);
        assert_eq!(in_degrees(&g), vec![1, 1, 1, 0]);
    }

    #[test]
    fn undirected_in_equals_out() {
        let g = star_graph(8);
        assert_eq!(out_degrees(&g), in_degrees(&g));
    }

    #[test]
    fn bounds_and_histogram() {
        let degs = vec![0, 3, 3, 1, 7];
        assert_eq!(degree_bounds(&degs), Some((0, 7)));
        let hist = degree_histogram(&degs);
        assert_eq!(hist.len(), 8);
        assert_eq!(hist[0], 1);
        assert_eq!(hist[3], 2);
        assert_eq!(hist[7], 1);
        assert_eq!(hist.iter().sum::<usize>(), 5);
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(degree_bounds(&[]), None);
        assert!(degree_stats(&[]).is_none());
        assert_eq!(degree_histogram(&[]), vec![0usize; 1]);
    }

    #[test]
    fn log_binning_covers_all_vertices() {
        let degs = vec![0, 1, 1, 2, 3, 4, 9, 17, 64];
        let binned = log_binned_histogram(&degs);
        let total: usize = binned.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, degs.len());
        assert_eq!(binned[0], (0, 1)); // the single degree-0 vertex
        assert!(binned.contains(&(1, 2))); // degrees 1, 1
        assert!(binned.contains(&(2, 2))); // degrees 2, 3
        assert!(binned.contains(&(64, 1)));
    }

    #[test]
    fn stats_on_scale_free_graph_match_paper_shape() {
        // Needs enough vertices that 1% of the max degree clears the
        // minimum degree m — the regime the paper's §4.2 threshold assumes.
        let g = barabasi_albert(30_000, 3, WeightSpec::Unit, 11).unwrap();
        let degs = out_degrees(&g);
        let stats = degree_stats(&degs).unwrap();
        assert!(stats.max as f64 > stats.mean * 10.0, "hubs exist");
        assert!(stats.median <= 2 * 3 + 1, "most vertices are near m");
        // The paper's §4.3 observation: the overwhelming majority of
        // vertices fall below 1% of the max degree.
        assert!(
            stats.above_one_percent_of_max < 0.5,
            "got {}",
            stats.above_one_percent_of_max
        );
    }

    #[test]
    fn median_lower_for_even_counts() {
        let s = degree_stats(&[1, 2, 3, 4]).unwrap();
        assert_eq!(s.median, 2);
    }
}
