//! Incremental graph construction.

use std::collections::HashSet;

use crate::csr::{CsrGraph, Direction};
use crate::error::GraphError;

/// What to do when the same edge is added twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Keep every occurrence (multigraph). The SSSP algorithms tolerate
    /// parallel edges, so this is the cheap default.
    #[default]
    Keep,
    /// Silently drop repeated `(u, v)` pairs (first weight wins). Real
    /// datasets such as sx-superuser contain repeated interactions; the
    /// paper treats them as simple graphs.
    Ignore,
    /// Return [`GraphError::DuplicateEdge`].
    Reject,
}

/// Builds a [`CsrGraph`] from individually added edges.
///
/// ```
/// use parapsp_graph::{GraphBuilder, Direction, DuplicatePolicy};
///
/// let mut b = GraphBuilder::new(3, Direction::Directed)
///     .with_duplicate_policy(DuplicatePolicy::Ignore);
/// b.add_edge(0, 1, 1).unwrap();
/// b.add_edge(0, 1, 9).unwrap(); // dropped
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.weights(0), &[1]);
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    vertex_count: usize,
    direction: Direction,
    duplicate_policy: DuplicatePolicy,
    allow_self_loops: bool,
    edges: Vec<(u32, u32, u32)>,
    seen: HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with a fixed vertex count.
    pub fn new(vertex_count: usize, direction: Direction) -> Self {
        GraphBuilder {
            vertex_count,
            direction,
            duplicate_policy: DuplicatePolicy::Keep,
            allow_self_loops: false,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Sets the duplicate-edge policy (default: keep).
    pub fn with_duplicate_policy(mut self, policy: DuplicatePolicy) -> Self {
        self.duplicate_policy = policy;
        self
    }

    /// Allows self-loops (default: they are silently dropped — shortest
    /// paths never use them, and the paper's datasets exclude them).
    pub fn with_self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Pre-allocates room for `n` edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Number of accepted edges so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds one edge. For undirected graphs `(u, v)` and `(v, u)` are the
    /// same edge for deduplication purposes.
    pub fn add_edge(&mut self, u: u32, v: u32, weight: u32) -> Result<(), GraphError> {
        if u as usize >= self.vertex_count {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                vertex_count: self.vertex_count,
            });
        }
        if v as usize >= self.vertex_count {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                vertex_count: self.vertex_count,
            });
        }
        if u == v {
            if self.allow_self_loops {
                // A self-loop can never shorten a path; store it anyway for
                // faithful degree counts.
                self.edges.push((u, v, weight));
            }
            return Ok(());
        }
        if self.duplicate_policy != DuplicatePolicy::Keep {
            let key = match self.direction {
                Direction::Directed => (u, v),
                Direction::Undirected => (u.min(v), u.max(v)),
            };
            if !self.seen.insert(key) {
                return match self.duplicate_policy {
                    DuplicatePolicy::Ignore => Ok(()),
                    DuplicatePolicy::Reject => Err(GraphError::DuplicateEdge { from: u, to: v }),
                    DuplicatePolicy::Keep => unreachable!(),
                };
            }
        }
        self.edges.push((u, v, weight));
        Ok(())
    }

    /// Adds a unit-weight edge.
    pub fn add_unit_edge(&mut self, u: u32, v: u32) -> Result<(), GraphError> {
        self.add_edge(u, v, 1)
    }

    /// Finalizes the builder into CSR form.
    ///
    /// Neighbor lists are emitted in edge-insertion order; undirected edges
    /// appear in both endpoint lists.
    pub fn build(self) -> CsrGraph {
        let n = self.vertex_count;
        let logical_edges = self.edges.len();
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &self.edges {
            degree[u as usize] += 1;
            if !self.direction.is_directed() && u != v {
                degree[v as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0u32; acc];
        let mut weights = vec![0u32; acc];
        for &(u, v, w) in &self.edges {
            let slot = cursor[u as usize];
            cursor[u as usize] += 1;
            targets[slot] = v;
            weights[slot] = w;
            if !self.direction.is_directed() && u != v {
                let slot = cursor[v as usize];
                cursor[v as usize] += 1;
                targets[slot] = u;
                weights[slot] = w;
            }
        }
        CsrGraph::from_parts(self.direction, offsets, targets, weights, logical_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_is_preserved() {
        let mut b = GraphBuilder::new(4, Direction::Directed);
        b.add_edge(2, 3, 1).unwrap();
        b.add_edge(2, 0, 7).unwrap();
        b.add_edge(2, 1, 4).unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(2), &[3, 0, 1]);
        assert_eq!(g.weights(2), &[1, 7, 4]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new(2, Direction::Undirected);
        b.add_edge(0, 0, 1).unwrap();
        b.add_edge(0, 1, 1).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn self_loops_kept_when_allowed() {
        let mut b = GraphBuilder::new(2, Direction::Directed).with_self_loops(true);
        b.add_edge(1, 1, 3).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(1), &[1]);
    }

    #[test]
    fn duplicate_keep_makes_multigraph() {
        let mut b = GraphBuilder::new(2, Direction::Directed);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(0, 1, 2).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.weights(0), &[1, 2]);
    }

    #[test]
    fn duplicate_ignore_keeps_first() {
        let mut b =
            GraphBuilder::new(2, Direction::Directed).with_duplicate_policy(DuplicatePolicy::Ignore);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(0, 1, 2).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weights(0), &[1]);
    }

    #[test]
    fn duplicate_reject_errors() {
        let mut b =
            GraphBuilder::new(2, Direction::Directed).with_duplicate_policy(DuplicatePolicy::Reject);
        b.add_edge(0, 1, 1).unwrap();
        assert!(matches!(
            b.add_edge(0, 1, 2),
            Err(GraphError::DuplicateEdge { from: 0, to: 1 })
        ));
    }

    #[test]
    fn undirected_duplicate_detected_across_orientations() {
        let mut b = GraphBuilder::new(3, Direction::Undirected)
            .with_duplicate_policy(DuplicatePolicy::Ignore);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 0, 9).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn directed_reverse_edge_is_distinct() {
        let mut b = GraphBuilder::new(3, Direction::Directed)
            .with_duplicate_policy(DuplicatePolicy::Reject);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn out_of_range_endpoints_rejected() {
        let mut b = GraphBuilder::new(3, Direction::Directed);
        assert!(matches!(
            b.add_edge(3, 0, 1),
            Err(GraphError::VertexOutOfRange { vertex: 3, .. })
        ));
        assert!(matches!(
            b.add_edge(0, 5, 1),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
    }
}
