//! Edge-list I/O in the formats used by the paper's data sources.
//!
//! * **SNAP** (`snap.stanford.edu`): whitespace-separated `from to` pairs,
//!   `#`-prefixed comment lines, arbitrary (sparse) vertex ids.
//! * **KONECT** (`konect.cc`): like SNAP but with `%`-prefixed headers and
//!   an optional third weight column.
//!
//! Vertex ids found in a file are densified to `0..n` in first-appearance
//! order; [`LoadedGraph::original_ids`] keeps the mapping so analysis output
//! can be reported in the dataset's own id space.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::builder::{DuplicatePolicy, GraphBuilder};
use crate::csr::{CsrGraph, Direction};
use crate::error::GraphError;

/// A parsed edge-list file: the graph plus the id mapping back to the file.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The densified graph.
    pub graph: CsrGraph,
    /// `original_ids[v]` is the id vertex `v` had in the input file.
    pub original_ids: Vec<u64>,
}

impl LoadedGraph {
    /// Looks up the dense id of an original file id, if present.
    pub fn dense_id(&self, original: u64) -> Option<u32> {
        // O(n) lookup is fine for the occasional query; bulk users should
        // build their own map from `original_ids`.
        self.original_ids
            .iter()
            .position(|&id| id == original)
            .map(|i| i as u32)
    }
}

/// Options controlling edge-list parsing.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Directedness to give the resulting graph.
    pub direction: Direction,
    /// Characters that start a comment line.
    pub comment_prefixes: &'static [char],
    /// How to treat repeated edges (datasets like sx-superuser repeat
    /// interactions; the paper treats graphs as simple).
    pub duplicate_policy: DuplicatePolicy,
    /// Weight assigned when a line has no weight column.
    pub default_weight: u32,
}

impl ParseOptions {
    /// SNAP conventions: `#` comments.
    pub fn snap(direction: Direction) -> Self {
        ParseOptions {
            direction,
            comment_prefixes: &['#'],
            duplicate_policy: DuplicatePolicy::Ignore,
            default_weight: 1,
        }
    }

    /// KONECT conventions: `%` comments.
    pub fn konect(direction: Direction) -> Self {
        ParseOptions {
            direction,
            comment_prefixes: &['%'],
            duplicate_policy: DuplicatePolicy::Ignore,
            default_weight: 1,
        }
    }
}

/// Parses an edge list from any reader.
pub fn read_edge_list<R: Read>(
    reader: R,
    options: ParseOptions,
) -> Result<LoadedGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut ids: HashMap<u64, u32> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();

    let intern = |raw: u64,
                  line_no: usize,
                  ids: &mut HashMap<u64, u32>,
                  originals: &mut Vec<u64>|
     -> Result<u32, GraphError> {
        if let Some(&dense) = ids.get(&raw) {
            return Ok(dense);
        }
        // Dense ids are u32; a file introducing a 2^32-th distinct vertex
        // must fail instead of silently wrapping the id space.
        let dense = u32::try_from(originals.len()).map_err(|_| GraphError::Parse {
            line: line_no + 1,
            message: format!(
                "vertex id `{raw}` is the {}th distinct id; only 2^32 vertices are supported",
                originals.len() + 1
            ),
        })?;
        ids.insert(raw, dense);
        originals.push(raw);
        Ok(dense)
    };

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if options
            .comment_prefixes
            .iter()
            .any(|&c| trimmed.starts_with(c))
        {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let parse_field = |s: Option<&str>, what: &str| -> Result<u64, GraphError> {
            let s = s.ok_or_else(|| GraphError::Parse {
                line: line_no + 1,
                message: format!("missing {what} column"),
            })?;
            s.parse::<u64>().map_err(|_| GraphError::Parse {
                line: line_no + 1,
                message: format!("{what} column `{s}` is not a non-negative integer"),
            })
        };
        let from = parse_field(fields.next(), "source")?;
        let to = parse_field(fields.next(), "target")?;
        let weight = match fields.next() {
            // Third column may be a weight or (in KONECT temporal files) a
            // timestamp; treat any number as a weight, clamped to >= 1.
            // Values a u32 cannot hold (or non-finite ones) are errors —
            // silently saturating would corrupt shortest-path results.
            Some(s) => {
                let w = s.parse::<f64>().map_err(|_| GraphError::Parse {
                    line: line_no + 1,
                    message: format!("weight column `{s}` is not numeric"),
                })?;
                if !w.is_finite() {
                    return Err(GraphError::Parse {
                        line: line_no + 1,
                        message: format!("weight column `{s}` is not a finite number"),
                    });
                }
                if w > u32::MAX as f64 {
                    return Err(GraphError::Parse {
                        line: line_no + 1,
                        message: format!("weight column `{s}` overflows u32 (max {})", u32::MAX),
                    });
                }
                w.max(1.0) as u32
            }
            None => options.default_weight,
        };
        let u = intern(from, line_no, &mut ids, &mut original_ids)?;
        let v = intern(to, line_no, &mut ids, &mut original_ids)?;
        edges.push((u, v, weight));
    }

    let mut builder = GraphBuilder::new(original_ids.len(), options.direction)
        .with_duplicate_policy(options.duplicate_policy);
    builder.reserve(edges.len());
    for (u, v, w) in edges {
        builder.add_edge(u, v, w)?;
    }
    Ok(LoadedGraph {
        graph: builder.build(),
        original_ids,
    })
}

/// Parses an edge-list file from disk.
pub fn read_edge_list_file(
    path: impl AsRef<Path>,
    options: ParseOptions,
) -> Result<LoadedGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, options)
}

/// Writes a graph as a SNAP-style edge list (one logical edge per line,
/// with the weight as a third column when not 1).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# {} graph: {} vertices, {} edges",
        if graph.direction().is_directed() {
            "directed"
        } else {
            "undirected"
        },
        graph.vertex_count(),
        graph.edge_count()
    )?;
    for (u, v, w) in graph.logical_edges() {
        if w == 1 {
            writeln!(writer, "{u}\t{v}")?;
        } else {
            writeln!(writer, "{u}\t{v}\t{w}")?;
        }
    }
    Ok(())
}

/// Writes a graph in Graphviz DOT format (for `dot -Tsvg` rendering of
/// small graphs). Weights become edge labels when not 1.
pub fn write_dot<W: Write>(graph: &CsrGraph, mut writer: W) -> Result<(), GraphError> {
    let (keyword, arrow) = if graph.direction().is_directed() {
        ("digraph", "->")
    } else {
        ("graph", "--")
    };
    writeln!(writer, "{keyword} g {{")?;
    writeln!(writer, "  node [shape=circle];")?;
    for v in 0..graph.vertex_count() {
        writeln!(writer, "  {v};")?;
    }
    for (u, v, w) in graph.logical_edges() {
        if w == 1 {
            writeln!(writer, "  {u} {arrow} {v};")?;
        } else {
            writeln!(writer, "  {u} {arrow} {v} [label={w}];")?;
        }
    }
    writeln!(writer, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAP_SAMPLE: &str = "\
# Directed graph (each unordered pair of nodes is saved once)
# FromNodeId\tToNodeId
10 20
20 30
10 30
30 10
";

    #[test]
    fn snap_sample_parses_and_densifies() {
        let loaded = read_edge_list(
            SNAP_SAMPLE.as_bytes(),
            ParseOptions::snap(Direction::Directed),
        )
        .unwrap();
        assert_eq!(loaded.graph.vertex_count(), 3);
        assert_eq!(loaded.graph.edge_count(), 4);
        assert_eq!(loaded.original_ids, vec![10, 20, 30]);
        assert_eq!(loaded.dense_id(20), Some(1));
        assert_eq!(loaded.dense_id(99), None);
        // 10 -> 20 and 10 -> 30
        assert_eq!(loaded.graph.out_degree(0), 2);
    }

    #[test]
    fn konect_comments_and_weights() {
        let text = "% sym weighted\n1 2 5\n2 3 2\n";
        let loaded =
            read_edge_list(text.as_bytes(), ParseOptions::konect(Direction::Undirected)).unwrap();
        assert_eq!(loaded.graph.edge_count(), 2);
        assert_eq!(loaded.graph.weights(0), &[5]);
    }

    #[test]
    fn duplicate_edges_ignored_by_default() {
        let text = "1 2\n1 2\n2 1\n";
        let loaded =
            read_edge_list(text.as_bytes(), ParseOptions::snap(Direction::Undirected)).unwrap();
        assert_eq!(loaded.graph.edge_count(), 1);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "1 2\nfoo bar\n";
        let err =
            read_edge_list(text.as_bytes(), ParseOptions::snap(Direction::Directed)).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("foo"));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn missing_column_reports_position() {
        let text = "1\n";
        let err =
            read_edge_list(text.as_bytes(), ParseOptions::snap(Direction::Directed)).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn truncated_line_is_an_error_with_its_line_number() {
        // A line with a source but no target (e.g. a download cut short).
        let text = "1 2\n2 3\n4\n";
        let err =
            read_edge_list(text.as_bytes(), ParseOptions::snap(Direction::Directed)).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 3, "line numbers are 1-based");
                assert!(message.contains("target"), "got: {message}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn negative_id_is_rejected() {
        let text = "1 2\n-5 3\n";
        let err =
            read_edge_list(text.as_bytes(), ParseOptions::snap(Direction::Directed)).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("-5"), "got: {message}");
                assert!(message.contains("non-negative"), "got: {message}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn oversized_and_non_finite_weights_are_rejected() {
        // 2^32 does not fit in u32: must be an error, not a saturation.
        let text = "1 2 4294967296\n";
        let err =
            read_edge_list(text.as_bytes(), ParseOptions::snap(Direction::Directed)).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("overflows"), "got: {message}");
            }
            other => panic!("unexpected error: {other}"),
        }
        for bad in ["1 2 inf", "1 2 nan", "1 2 -inf"] {
            let err = read_edge_list(bad.as_bytes(), ParseOptions::snap(Direction::Directed))
                .unwrap_err();
            assert!(
                matches!(err, GraphError::Parse { line: 1, .. }),
                "{bad}: {err}"
            );
        }
        // The largest representable weight still parses.
        let text = format!("1 2 {}\n", u32::MAX);
        let loaded =
            read_edge_list(text.as_bytes(), ParseOptions::snap(Direction::Directed)).unwrap();
        assert_eq!(loaded.graph.weights(0), &[u32::MAX]);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "\n1 2\n\n   \n2 3\n";
        let loaded =
            read_edge_list(text.as_bytes(), ParseOptions::snap(Direction::Directed)).unwrap();
        assert_eq!(loaded.graph.edge_count(), 2);
    }

    #[test]
    fn round_trip_write_then_read() {
        let g = crate::generate::erdos_renyi_gnm(
            30,
            60,
            Direction::Directed,
            crate::generate::WeightSpec::Uniform { lo: 1, hi: 9 },
            3,
        )
        .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded =
            read_edge_list(buf.as_slice(), ParseOptions::snap(Direction::Directed)).unwrap();
        // Ids were already dense, so the round trip is exact up to edge order.
        assert_eq!(loaded.graph.vertex_count(), g.vertex_count());
        assert_eq!(loaded.graph.edge_count(), g.edge_count());
        let mut a: Vec<_> = g.arcs().collect();
        let mut b: Vec<_> = loaded
            .graph
            .arcs()
            .map(|(u, v, w)| {
                (
                    loaded.original_ids[u as usize] as u32,
                    loaded.original_ids[v as usize] as u32,
                    w,
                )
            })
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn dot_output_shapes() {
        let directed =
            CsrGraph::from_edges(3, Direction::Directed, &[(0, 1, 1), (1, 2, 5)]).unwrap();
        let mut buf = Vec::new();
        write_dot(&directed, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("digraph g {"));
        assert!(text.contains("0 -> 1;"));
        assert!(text.contains("1 -> 2 [label=5];"));

        let undirected = CsrGraph::from_unit_edges(2, Direction::Undirected, &[(0, 1)]).unwrap();
        let mut buf = Vec::new();
        write_dot(&undirected, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("graph g {"));
        assert!(text.contains("0 -- 1;"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("parapsp-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "# c\n0 1\n1 2\n").unwrap();
        let loaded = read_edge_list_file(&path, ParseOptions::snap(Direction::Undirected)).unwrap();
        assert_eq!(loaded.graph.edge_count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
