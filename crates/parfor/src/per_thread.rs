//! Per-thread mutable storage for parallel regions.
//!
//! The MultiLists ordering procedure (paper Alg. 7) gives every thread its
//! own list of buckets so it can insert without locks. [`PerThread`] is the
//! generic building block for that pattern: one slot per pool thread, each
//! slot mutably accessible by exactly one thread id during a region, all
//! slots collectible afterwards.

use std::cell::UnsafeCell;

use crossbeam::utils::CachePadded;

/// One mutable slot per pool thread, accessed by thread id.
///
/// Slots are cache-line padded so threads hammering their own slot do not
/// false-share (the paper calls out false sharing as the reason MultiLists
/// serializes its high-degree merge range, §4.3).
///
/// ```
/// use parapsp_parfor::{PerThread, ThreadPool, Schedule};
///
/// let pool = ThreadPool::new(4);
/// let locals: PerThread<Vec<usize>> = PerThread::new(pool.num_threads());
/// pool.parallel_for(100, Schedule::Block, |tid, i| {
///     // SAFETY: each thread only touches its own slot.
///     unsafe { locals.get_mut(tid) }.push(i);
/// });
/// let total: usize = locals.into_inner().iter().map(Vec::len).sum();
/// assert_eq!(total, 100);
/// ```
pub struct PerThread<T> {
    slots: Vec<CachePadded<UnsafeCell<T>>>,
}

// SAFETY: access to each slot is mediated by the unsafe `get_mut`, whose
// contract requires callers to pass distinct thread ids from distinct
// threads. The type itself stores plain data.
unsafe impl<T: Send> Sync for PerThread<T> {}

impl<T: Default> PerThread<T> {
    /// Creates `threads` default-initialized slots.
    pub fn new(threads: usize) -> Self {
        Self::from_fn(threads, |_| T::default())
    }
}

impl<T> PerThread<T> {
    /// Creates `threads` slots, initializing slot `i` with `init(i)`.
    pub fn from_fn(threads: usize, init: impl FnMut(usize) -> T) -> Self {
        let mut init = init;
        PerThread {
            slots: (0..threads)
                .map(|i| CachePadded::new(UnsafeCell::new(init(i))))
                .collect(),
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the container has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns a mutable reference to slot `tid`.
    ///
    /// # Safety
    ///
    /// For the duration of the returned borrow no other reference to slot
    /// `tid` may exist. The intended discipline — each pool thread passes
    /// only its own thread id, inside a single parallel region — satisfies
    /// this, because the pool hands out distinct ids.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn get_mut(&self, tid: usize) -> &mut T {
        debug_assert!(tid < self.slots.len(), "thread id out of range");
        unsafe { &mut *self.slots[tid].get() }
    }

    /// Consumes the container, returning all slot values in thread-id order.
    pub fn into_inner(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|padded| CachePadded::into_inner(padded).into_inner())
            .collect()
    }

    /// Iterates over the slots by shared reference.
    ///
    /// Only sound once no parallel region is mutating slots, which the
    /// `&mut self` receiver enforces.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|padded| padded.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schedule, ThreadPool};

    #[test]
    fn each_thread_accumulates_into_its_own_slot() {
        let pool = ThreadPool::new(4);
        let locals: PerThread<u64> = PerThread::new(pool.num_threads());
        pool.parallel_for(1000, Schedule::dynamic_cyclic(), |tid, i| {
            // SAFETY: tid identifies this pool thread uniquely.
            unsafe { *locals.get_mut(tid) += i as u64 };
        });
        let total: u64 = locals.into_inner().into_iter().sum();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn from_fn_initializes_per_slot() {
        let p = PerThread::from_fn(3, |i| i * 10);
        assert_eq!(p.len(), 3);
        assert_eq!(p.into_inner(), vec![0, 10, 20]);
    }

    #[test]
    fn iter_mut_visits_all_slots() {
        let mut p: PerThread<i32> = PerThread::new(4);
        for (i, slot) in p.iter_mut().enumerate() {
            *slot = i as i32;
        }
        assert_eq!(p.into_inner(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_container() {
        let p: PerThread<u8> = PerThread::new(0);
        assert!(p.is_empty());
        assert!(p.into_inner().is_empty());
    }
}
