//! Cooperative cancellation and deadlines for parallel regions.
//!
//! A [`CancelToken`] is a cheap, cloneable handle to a shared cancellation
//! state: an atomic flag (tripped by [`CancelToken::cancel`], e.g. from a
//! signal handler), an optional wall-clock deadline, and an optional *poll
//! budget* used by property tests to stop a computation after an exact
//! number of progress checks. Loops poll the token at chunk boundaries and
//! drain cleanly instead of being killed mid-iteration.
//!
//! ```
//! use parapsp_parfor::{CancelStatus, CancelToken};
//!
//! let token = CancelToken::new();
//! assert_eq!(token.poll(), CancelStatus::Continue);
//! token.cancel();
//! assert_eq!(token.poll(), CancelStatus::Cancelled);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The answer to "may I keep working?", returned by [`CancelToken::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelStatus {
    /// Not cancelled: keep going.
    Continue,
    /// [`CancelToken::cancel`] was called (or a poll budget ran out).
    Cancelled,
    /// The wall-clock deadline passed before anyone called `cancel`.
    DeadlineExceeded,
}

impl CancelStatus {
    /// `true` when work may continue.
    #[inline]
    pub fn is_continue(self) -> bool {
        matches!(self, CancelStatus::Continue)
    }

    /// `true` when work must stop (cancelled or deadline exceeded).
    #[inline]
    pub fn is_stop(self) -> bool {
        !self.is_continue()
    }
}

struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Remaining polls that may answer `Continue`; when it reaches zero the
    /// token trips itself. `None` means unlimited.
    poll_budget: Option<AtomicU64>,
}

/// Shared cancellation state polled cooperatively at chunk boundaries.
///
/// Clones share the same state: cancelling any clone cancels them all.
/// Polling is two relaxed atomic loads on the hot path (plus one clock read
/// when a deadline is set), cheap enough for per-source granularity.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("status", &self.status())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

impl CancelToken {
    /// A token that never cancels on its own; trip it with [`cancel`].
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                poll_budget: None,
            }),
        }
    }

    /// A token whose polls report [`CancelStatus::DeadlineExceeded`] once
    /// `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + timeout)
    }

    /// Like [`with_deadline`](CancelToken::with_deadline) with an absolute
    /// instant.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                poll_budget: None,
            }),
        }
    }

    /// A token that self-cancels after exactly `budget` polls have answered
    /// [`CancelStatus::Continue`] (across all clones and threads).
    ///
    /// This exists for deterministic tests: "cancel at an arbitrary point"
    /// becomes "cancel after the N-th progress check", with N drawn by a
    /// property-test strategy.
    pub fn with_poll_budget(budget: u64) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                poll_budget: Some(AtomicU64::new(budget)),
            }),
        }
    }

    /// Trips the token: every subsequent poll answers
    /// [`CancelStatus::Cancelled`].
    ///
    /// This is a single atomic store — async-signal-safe, so it may be
    /// called from a signal handler.
    #[inline]
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Current status without consuming poll budget.
    ///
    /// Explicit cancellation takes precedence over an elapsed deadline.
    #[inline]
    pub fn status(&self) -> CancelStatus {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return CancelStatus::Cancelled;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return CancelStatus::DeadlineExceeded;
            }
        }
        CancelStatus::Continue
    }

    /// Checks the token at a chunk boundary. Consumes one unit of poll
    /// budget when one is set; once the budget is exhausted the token trips
    /// itself and all further polls answer [`CancelStatus::Cancelled`].
    #[inline]
    pub fn poll(&self) -> CancelStatus {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return CancelStatus::Cancelled;
        }
        if let Some(budget) = &self.inner.poll_budget {
            if budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_err()
            {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                return CancelStatus::Cancelled;
            }
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return CancelStatus::DeadlineExceeded;
            }
        }
        CancelStatus::Continue
    }

    /// The deadline instant, when one was set.
    #[inline]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Wall-clock time left before the deadline (zero once it has
    /// passed), or `None` when no deadline was set. Lets blocking waits —
    /// a socket read, a channel `recv_timeout` — cap their sleep so a
    /// deadline is honored promptly instead of at the next natural
    /// wakeup.
    #[inline]
    pub fn time_left(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_left_tracks_the_deadline() {
        assert_eq!(CancelToken::new().time_left(), None);
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        let left = t.time_left().expect("deadline token reports time left");
        assert!(left > Duration::from_secs(3500) && left <= Duration::from_secs(3600));
        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(expired.time_left(), Some(Duration::ZERO));
    }

    #[test]
    fn fresh_token_continues() {
        let t = CancelToken::new();
        assert_eq!(t.status(), CancelStatus::Continue);
        for _ in 0..1000 {
            assert_eq!(t.poll(), CancelStatus::Continue);
        }
    }

    #[test]
    fn cancel_is_sticky_and_shared_between_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert_eq!(t.poll(), CancelStatus::Cancelled);
        assert_eq!(t.status(), CancelStatus::Cancelled);
        assert_eq!(c.poll(), CancelStatus::Cancelled);
    }

    #[test]
    fn deadline_in_the_past_fires_immediately() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.poll(), CancelStatus::DeadlineExceeded);
        assert_eq!(t.status(), CancelStatus::DeadlineExceeded);
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(t.poll(), CancelStatus::Continue);
    }

    #[test]
    fn explicit_cancel_beats_elapsed_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        t.cancel();
        assert_eq!(t.poll(), CancelStatus::Cancelled);
    }

    #[test]
    fn poll_budget_allows_exactly_n_continues() {
        let t = CancelToken::with_poll_budget(3);
        assert_eq!(t.poll(), CancelStatus::Continue);
        assert_eq!(t.poll(), CancelStatus::Continue);
        assert_eq!(t.poll(), CancelStatus::Continue);
        assert_eq!(t.poll(), CancelStatus::Cancelled);
        assert_eq!(t.poll(), CancelStatus::Cancelled);
    }

    #[test]
    fn zero_budget_cancels_on_first_poll() {
        let t = CancelToken::with_poll_budget(0);
        assert_eq!(t.status(), CancelStatus::Continue); // status is free
        assert_eq!(t.poll(), CancelStatus::Cancelled);
    }

    #[test]
    fn budget_is_shared_across_clones_and_threads() {
        let t = CancelToken::with_poll_budget(1000);
        let continues: u64 = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let t = t.clone();
                    s.spawn(move || {
                        let mut mine = 0u64;
                        while t.poll().is_continue() {
                            mine += 1;
                        }
                        mine
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(continues, 1000);
    }
}
