//! OpenMP-like shared-memory parallelism substrate for the ParAPSP
//! reproduction.
//!
//! The paper (Kim, Choi & Bae, ICPP'18) relies on three OpenMP loop
//! schedules whose semantics are load-bearing for its results:
//!
//! * the default **block** partitioning (`#pragma omp parallel for`),
//! * **static-cyclic** (`schedule(static, 1)`), and
//! * **dynamic-cyclic** (`schedule(dynamic, 1)`), which preserves the
//!   *issue order* of iterations — the property that makes the degree-ordered
//!   APSP optimization effective (paper §3.2, Fig. 1).
//!
//! Rayon's work stealing offers none of these guarantees and does not expose
//! stable thread identifiers (needed by the MultiLists ordering procedure,
//! paper Alg. 7), so this crate implements a small persistent thread pool
//! with exactly those schedules — plus a locality-aware
//! [`Schedule::WorkStealing`] backend built on per-worker Chase–Lev-style
//! deques that keeps the result deterministic (every index runs exactly
//! once, whatever the steal order) while balancing skewed per-iteration
//! costs without a single shared claim counter.
//!
//! # Quick example
//!
//! ```
//! use parapsp_parfor::{ThreadPool, Schedule};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let sum = AtomicU64::new(0);
//! pool.parallel_for(100, Schedule::dynamic_cyclic(), |_tid, i| {
//!     sum.fetch_add(i as u64, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
//! ```

#![warn(missing_docs)]

mod bitset;
mod cancel;
mod per_thread;
mod pool;
mod schedule;
mod shared_slice;
pub mod spec;
mod steal;

pub use bitset::BitSet;
pub use cancel::{CancelStatus, CancelToken};
pub use crossbeam::utils::CachePadded;
pub use per_thread::PerThread;
pub use pool::ThreadPool;
pub use schedule::{block_range, Schedule};
pub use shared_slice::ParSlice;
pub use steal::ScheduleStats;
