//! Disjoint concurrent writes into one slice.
//!
//! Phase 2 of the MultiLists ordering (paper Alg. 7, lines 10–19) has many
//! threads writing different, pre-computed ranges of the single global
//! `order` array. [`ParSlice`] wraps a `&mut [T]` so it can be shared across
//! a parallel region, with an unsafe per-element write whose disjointness
//! contract is documented at the call sites.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A shareable view over a mutable slice allowing concurrent writes to
/// *disjoint* indices.
///
/// ```
/// use parapsp_parfor::{ParSlice, Schedule, ThreadPool};
///
/// let mut data = vec![0u32; 100];
/// {
///     let view = ParSlice::new(&mut data);
///     let pool = ThreadPool::new(4);
///     pool.parallel_for(100, Schedule::StaticCyclic, |_tid, i| {
///         // SAFETY: each index is visited exactly once.
///         unsafe { view.write(i, i as u32 * 2) };
///     });
/// }
/// assert_eq!(data[21], 42);
/// ```
pub struct ParSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a UnsafeCell<[T]>>,
}

// SAFETY: the only mutation path is `write`, whose contract demands that
// concurrent calls target disjoint indices; `T: Send` means moving values
// into the slice from another thread is fine.
unsafe impl<T: Send> Sync for ParSlice<'_, T> {}
unsafe impl<T: Send> Send for ParSlice<'_, T> {}

impl<'a, T> ParSlice<'a, T> {
    /// Wraps a mutable slice for the duration of a parallel region.
    pub fn new(slice: &'a mut [T]) -> Self {
        ParSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    ///
    /// No other read or write of `index` may happen concurrently: every
    /// index must be owned by at most one thread at any moment. Bounds are
    /// checked (panics on out-of-range), only aliasing is the caller's
    /// obligation.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        assert!(index < self.len, "ParSlice index {index} out of bounds");
        // SAFETY: in-bounds by the assert; exclusivity by the caller.
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    ///
    /// No write to `index` may happen concurrently (concurrent reads are
    /// fine). Tiled algorithms use this to read pivot regions that the
    /// current phase never writes.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        assert!(index < self.len, "ParSlice index {index} out of bounds");
        // SAFETY: in-bounds by the assert; no concurrent writer by the
        // caller's contract.
        unsafe { self.ptr.add(index).read() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schedule, ThreadPool};

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut data = vec![0usize; 1000];
        {
            let view = ParSlice::new(&mut data);
            let pool = ThreadPool::new(4);
            pool.parallel_for(1000, Schedule::dynamic_cyclic(), |_tid, i| unsafe {
                view.write(i, i + 1);
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let mut data = vec![0u8; 4];
        let view = ParSlice::new(&mut data);
        unsafe { view.write(4, 1) };
    }

    #[test]
    fn empty_slice() {
        let mut data: Vec<u8> = Vec::new();
        let view = ParSlice::new(&mut data);
        assert!(view.is_empty());
        assert_eq!(view.len(), 0);
    }
}
