//! A fixed-capacity bitset over `u64` words — the compact replacement for
//! `Vec<bool>` scratch bitmaps.
//!
//! The SPFA-style kernels keep one "is this vertex queued?" flag per vertex
//! in thread-local scratch. As `Vec<bool>` that bitmap is `n` bytes and, on
//! large graphs, evicts the very distance rows the inner loop is streaming
//! over; packed into words it is `n / 8` bytes — a 64-vertex cache line —
//! which keeps the frontier bookkeeping resident while rows flow through.

/// A fixed-capacity set of bits, one per index in `0..len`.
#[derive(Debug, Clone)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset for indices `0..len`, all bits clear.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range for {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range for {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range for {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// True when no bit is set (used to assert scratch state is clean).
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitSet::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        assert!(b.none_set());
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert!(!b.none_set());
        b.clear(64);
        assert!(!b.get(64));
        assert!(b.get(63) && b.get(65), "neighbors untouched");
        b.clear_all();
        assert!(b.none_set());
    }

    #[test]
    fn word_boundary_independence() {
        let mut b = BitSet::new(256);
        b.set(63);
        b.set(64);
        assert!(b.get(63) && b.get(64));
        b.clear(63);
        assert!(!b.get(63) && b.get(64));
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert!(b.none_set());
    }

    #[test]
    fn non_multiple_of_64_capacity() {
        let mut b = BitSet::new(65);
        b.set(64);
        assert!(b.get(64));
        assert!(!b.get(0));
    }
}
