//! Shared parsing for `name[:param]` CLI value specs.
//!
//! Several flags accept a closed set of names where some names carry a
//! colon-separated parameter: `--schedule dynamic:4`, `--solver delta:8`.
//! Before this module each parser hand-rolled the same split / validate /
//! reject dance with slightly different error wording. The helpers here
//! are the single implementation: [`split_spec`] separates name from
//! parameter, [`parse_positive_param`] validates the common
//! positive-integer shape, and [`reject_unknown`] builds the
//! self-describing rejection every spec parser must emit — the same
//! "possible values" phrasing the plain `ValueEnum` parsers use, so a
//! user sees one error style across every flag.

/// Splits `raw` at the first `:` into `(name, Some(param))`, or returns
/// `(raw, None)` when there is no parameter.
///
/// ```
/// use parapsp_parfor::spec::split_spec;
/// assert_eq!(split_spec("dynamic:4"), ("dynamic", Some("4")));
/// assert_eq!(split_spec("block"), ("block", None));
/// ```
#[inline]
pub fn split_spec(raw: &str) -> (&str, Option<&str>) {
    match raw.split_once(':') {
        Some((name, param)) => (name, Some(param)),
        None => (raw, None),
    }
}

/// Validates the common `:<positive integer>` parameter shape.
///
/// * `Some(param)` — must parse as an integer ≥ 1;
/// * `None` with a default — the default wins;
/// * `None` without a default — the spec required a parameter.
///
/// `kind` and `name` only flavour the error text (`"schedule"`,
/// `"dynamic"`).
pub fn parse_positive_param<T: std::str::FromStr + PartialOrd + From<u8>>(
    kind: &str,
    name: &str,
    param: Option<&str>,
    default: Option<T>,
) -> Result<T, String> {
    match (param, default) {
        (Some(p), _) => match p.parse::<T>() {
            Ok(v) if v >= T::from(1u8) => Ok(v),
            _ => Err(format!(
                "{kind} `{name}:{p}` needs a positive integer parameter"
            )),
        },
        (None, Some(d)) => Ok(d),
        (None, None) => Err(format!("{kind} `{name}` needs a `:<param>` value")),
    }
}

/// The rejection for a name outside the closed set: names the kind,
/// echoes the offending value, and enumerates every accepted spelling.
pub fn reject_unknown(kind: &str, raw: &str, possible: &[&str]) -> String {
    format!(
        "unknown {kind} `{raw}` (possible values: {})",
        possible.join(", ")
    )
}

/// The rejection for a parameter supplied to a name that takes none.
pub fn reject_param(kind: &str, name: &str) -> String {
    format!("{kind} `{name}` does not take a parameter")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_separates_name_and_param() {
        assert_eq!(
            split_spec("work-stealing:16"),
            ("work-stealing", Some("16"))
        );
        assert_eq!(split_spec("auto"), ("auto", None));
        assert_eq!(split_spec("a:b:c"), ("a", Some("b:c")));
        assert_eq!(split_spec(""), ("", None));
    }

    #[test]
    fn positive_param_validates_and_defaults() {
        assert_eq!(
            parse_positive_param::<usize>("schedule", "dynamic", Some("4"), None),
            Ok(4)
        );
        assert_eq!(
            parse_positive_param::<usize>("schedule", "work-stealing", None, Some(8)),
            Ok(8)
        );
        for bad in ["0", "-3", "lots", ""] {
            let err =
                parse_positive_param::<usize>("schedule", "dynamic", Some(bad), None).unwrap_err();
            assert!(err.contains("positive integer"), "{bad}: {err}");
        }
        let err = parse_positive_param::<usize>("schedule", "dynamic", None, None).unwrap_err();
        assert!(err.contains("dynamic"), "{err}");
    }

    #[test]
    fn rejections_are_self_describing() {
        let err = reject_unknown("schedule", "warp", &["block", "dynamic:<chunk>"]);
        assert!(err.contains("warp") && err.contains("possible values"));
        assert!(err.contains("block") && err.contains("dynamic:<chunk>"));
        let err = reject_param("schedule", "block");
        assert!(err.contains("block") && err.contains("parameter"));
    }
}
