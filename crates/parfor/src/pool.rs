//! A persistent thread pool with OpenMP-style *broadcast* parallel regions.
//!
//! Unlike a task queue, every parallel region runs the same closure on all
//! threads of the pool (each with a stable thread id), exactly like an
//! OpenMP `parallel` construct. [`ThreadPool::parallel_for`] layers the three
//! loop schedules from [`Schedule`] on top.
//!
//! The calling thread participates as thread 0, so a pool of `T` threads
//! spawns `T - 1` OS workers. A single-threaded pool executes regions inline
//! with no synchronization at all, which keeps 1-thread baseline timings
//! honest.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::utils::CachePadded;
use parking_lot::{Condvar, Mutex};

use crate::cancel::{CancelStatus, CancelToken};
use crate::schedule::{block_range, Schedule};
use crate::steal::{ScheduleStats, Steal, StealDeque};

/// Store-once slot recording the first stop status any thread observed.
/// Encoding: 0 = continue, 1 = cancelled, 2 = deadline exceeded.
fn record_stop(slot: &AtomicU8, status: CancelStatus) {
    let code = match status {
        CancelStatus::Continue => return,
        CancelStatus::Cancelled => 1,
        CancelStatus::DeadlineExceeded => 2,
    };
    let _ = slot.compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
}

fn decode_stop(slot: &AtomicU8) -> CancelStatus {
    match slot.load(Ordering::Relaxed) {
        0 => CancelStatus::Continue,
        1 => CancelStatus::Cancelled,
        _ => CancelStatus::DeadlineExceeded,
    }
}

/// Early-stop strategy for the unified loop driver. The cancellable and
/// plain entry points share one implementation of every schedule,
/// monomorphized over this trait: with [`NeverCancel`] the poll calls
/// compile to nothing, so the non-cancellable loops carry zero polling
/// overhead, and the loop bodies exist exactly once in the source.
trait Poller: Sync {
    /// Polls for a stop request, consuming deadline/budget as applicable.
    fn poll(&self) -> CancelStatus;
    /// Non-consuming status check, used for empty loops.
    fn initial_status(&self) -> CancelStatus;
}

/// The infallible poller behind [`ThreadPool::parallel_for`].
struct NeverCancel;

impl Poller for NeverCancel {
    #[inline(always)]
    fn poll(&self) -> CancelStatus {
        CancelStatus::Continue
    }

    #[inline(always)]
    fn initial_status(&self) -> CancelStatus {
        CancelStatus::Continue
    }
}

impl Poller for &CancelToken {
    #[inline]
    fn poll(&self) -> CancelStatus {
        CancelToken::poll(self)
    }

    #[inline]
    fn initial_status(&self) -> CancelStatus {
        self.status()
    }
}

/// Accumulated chunk-claim counters, updated once per worker per region.
#[derive(Default)]
struct PoolStats {
    pops: AtomicU64,
    steals: AtomicU64,
    failed_steals: AtomicU64,
}

impl PoolStats {
    /// Folds one worker's region-local counters in. Called at region
    /// end, so contention is bounded by the thread count, not the
    /// iteration count.
    fn flush(&self, pops: u64, steals: u64, failed_steals: u64) {
        if pops != 0 {
            self.pops.fetch_add(pops, Ordering::Relaxed);
        }
        if steals != 0 {
            self.steals.fetch_add(steals, Ordering::Relaxed);
        }
        if failed_steals != 0 {
            self.failed_steals
                .fetch_add(failed_steals, Ordering::Relaxed);
        }
    }
}

/// Claims the next `chunk` iterations from the shared dynamic counter.
/// The single `fetch_add` is the entire fast path.
#[inline]
fn claim_dynamic(next: &AtomicUsize, chunk: usize, n: usize) -> Option<std::ops::Range<usize>> {
    let start = next.fetch_add(chunk, Ordering::Relaxed);
    (start < n).then(|| start..(start + chunk).min(n))
}

/// Claims an OpenMP-guided chunk: half the remaining work divided by the
/// thread count, floored at `min_chunk`, via CAS so chunks shrink as the
/// loop drains.
#[inline]
fn claim_guided(
    next: &AtomicUsize,
    n: usize,
    threads: usize,
    min_chunk: usize,
) -> Option<std::ops::Range<usize>> {
    let mut observed = next.load(Ordering::Relaxed);
    while observed < n {
        let remaining = n - observed;
        let chunk = (remaining / (2 * threads)).max(min_chunk).min(remaining);
        match next.compare_exchange_weak(
            observed,
            observed + chunk,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(start) => return Some(start..start + chunk),
            Err(current) => observed = current,
        }
    }
    None
}

/// A broadcast job: invoked once per pool thread with that thread's id.
///
/// The pointer is lifetime-erased; see the safety argument in
/// [`ThreadPool::run`].
#[derive(Clone, Copy)]
struct JobRef {
    ptr: *const (dyn Fn(usize) + Sync),
}

// SAFETY: `JobRef` is only ever dereferenced while the `run` call that
// created it is still blocked waiting for all workers, so the referent is
// live, and the referent is `Sync` so shared calls from many threads are
// allowed.
unsafe impl Send for JobRef {}

struct Slot {
    /// Monotonic counter identifying the current parallel region.
    epoch: u64,
    /// Job of the current epoch, if a region is active.
    job: Option<JobRef>,
    /// Workers that have not yet finished the current region.
    remaining: usize,
    /// Whether any worker's closure panicked during the current region.
    worker_panicked: bool,
    /// Set by `Drop` to terminate the worker loops.
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Workers park here waiting for a new epoch.
    work_cv: Condvar,
    /// The caller parks here waiting for `remaining == 0`.
    done_cv: Condvar,
}

thread_local! {
    /// Guards against nested parallel regions, which would deadlock: a
    /// worker would wait for an epoch that can only be announced by itself.
    static INSIDE_REGION: Cell<bool> = const { Cell::new(false) };
}

/// A fixed-size pool of worker threads supporting OpenMP-like parallel
/// regions and scheduled parallel loops.
///
/// ```
/// use parapsp_parfor::{ThreadPool, Schedule};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(3);
/// assert_eq!(pool.num_threads(), 3);
///
/// let hits = AtomicUsize::new(0);
/// pool.run(|tid| {
///     assert!(tid < 3);
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 3);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    num_threads: usize,
    stats: PoolStats,
}

impl ThreadPool {
    /// Creates a pool with `num_threads` total threads (the caller counts as
    /// thread 0, so `num_threads - 1` OS threads are spawned).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "a thread pool needs at least one thread");
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                remaining: 0,
                worker_panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..num_threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("parfor-worker-{tid}"))
                    .spawn(move || worker_loop(&shared, tid))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            num_threads,
            stats: PoolStats::default(),
        }
    }

    /// Number of threads participating in each parallel region.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Chunk-claim statistics accumulated over every scheduled loop this
    /// pool has run since creation (or the last
    /// [`take_schedule_stats`](ThreadPool::take_schedule_stats)).
    ///
    /// Steal counters are only produced by
    /// [`Schedule::WorkStealing`]; pop counters also cover the
    /// `DynamicChunked`/`Guided` shared-counter claims and count one
    /// claim per inline loop on a single-thread pool.
    pub fn schedule_stats(&self) -> ScheduleStats {
        ScheduleStats {
            pops: self.stats.pops.load(Ordering::Relaxed),
            steals: self.stats.steals.load(Ordering::Relaxed),
            failed_steals: self.stats.failed_steals.load(Ordering::Relaxed),
        }
    }

    /// Returns the accumulated statistics and resets them to zero, so
    /// callers can attribute counters to one region or sweep.
    pub fn take_schedule_stats(&self) -> ScheduleStats {
        ScheduleStats {
            pops: self.stats.pops.swap(0, Ordering::Relaxed),
            steals: self.stats.steals.swap(0, Ordering::Relaxed),
            failed_steals: self.stats.failed_steals.swap(0, Ordering::Relaxed),
        }
    }

    /// Executes `f(tid)` once on every pool thread (an OpenMP `parallel`
    /// region) and returns when all of them have finished.
    ///
    /// Panics in any thread's closure are propagated to the caller after the
    /// whole region has completed, so the pool stays usable afterwards.
    ///
    /// # Panics
    ///
    /// Panics if called from inside another region of any pool (nested
    /// parallelism is not supported, as in the paper's flat OpenMP usage).
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        INSIDE_REGION.with(|flag| {
            assert!(
                !flag.get(),
                "nested parallel regions are not supported by parapsp-parfor"
            );
            flag.set(true);
        });
        // Make sure the flag is cleared even if `f` panics on thread 0.
        struct ResetGuard;
        impl Drop for ResetGuard {
            fn drop(&mut self) {
                INSIDE_REGION.with(|flag| flag.set(false));
            }
        }
        let _guard = ResetGuard;

        if self.num_threads == 1 {
            f(0);
            return;
        }

        let wide: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: we erase the lifetime of `f` to hand it to the workers.
        // This is sound because this function does not return (and `f` is
        // not dropped) until `remaining == 0`, i.e. every worker has
        // finished calling the closure and will never touch it again.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(wide)
        };
        let job = JobRef {
            ptr: erased as *const _,
        };

        {
            let mut slot = self.shared.slot.lock();
            debug_assert!(slot.job.is_none(), "previous region not cleaned up");
            slot.epoch += 1;
            slot.job = Some(job);
            slot.remaining = self.num_threads - 1;
            slot.worker_panicked = false;
            self.shared.work_cv.notify_all();
        }

        // The caller participates as thread 0. Catch its panic so we can
        // still wait for the workers (they borrow `f`!) before unwinding.
        let own_result = catch_unwind(AssertUnwindSafe(|| f(0)));

        let worker_panicked = {
            let mut slot = self.shared.slot.lock();
            while slot.remaining > 0 {
                self.shared.done_cv.wait(&mut slot);
            }
            slot.job = None;
            slot.worker_panicked
        };

        if let Err(payload) = own_result {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a parapsp-parfor worker thread panicked inside a parallel region");
        }
    }

    /// Runs `f(tid, i)` for every `i` in `0..n`, assigning iterations to
    /// threads according to `schedule`. Returns after all iterations finish.
    ///
    /// With [`Schedule::DynamicChunked(1)`](Schedule::DynamicChunked) the
    /// global order in which iterations are *claimed* equals the iteration
    /// order, which is what makes degree-ordered APSP effective (paper §3.2).
    pub fn parallel_for<F>(&self, n: usize, schedule: Schedule, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let _ = self.parallel_for_impl(n, schedule, NeverCancel, f);
    }

    /// Like [`parallel_for`](ThreadPool::parallel_for), but polls `token` at
    /// every chunk boundary so the loop can stop cooperatively: each thread
    /// finishes the iteration it is on, claims no further work, and the call
    /// returns the first stop status any thread observed
    /// ([`CancelStatus::Continue`] when the loop ran to completion).
    ///
    /// Polling granularity per schedule: `Block` and `StaticCyclic` poll
    /// before every iteration (their chunks are fixed up front, so the chunk
    /// boundary is the iteration); `DynamicChunked` and `Guided` poll before
    /// claiming each chunk; `WorkStealing` polls before every pop from the
    /// worker's own deque and between steal-scan rounds. Iterations that
    /// already started always run to completion — cancellation never tears a
    /// row in half.
    pub fn parallel_for_cancellable<F>(
        &self,
        n: usize,
        schedule: Schedule,
        token: &CancelToken,
        f: F,
    ) -> CancelStatus
    where
        F: Fn(usize, usize) + Sync,
    {
        self.parallel_for_impl(n, schedule, token, f)
    }

    /// The one loop driver behind both `parallel_for` entry points,
    /// monomorphized over the [`Poller`] so the plain variant compiles
    /// with all polling folded away.
    fn parallel_for_impl<P, F>(&self, n: usize, schedule: Schedule, poller: P, f: F) -> CancelStatus
    where
        P: Poller,
        F: Fn(usize, usize) + Sync,
    {
        if n == 0 {
            return poller.initial_status();
        }
        if self.num_threads == 1 {
            // Inline fast path: identical iteration order for every schedule.
            INSIDE_REGION.with(|flag| {
                assert!(
                    !flag.get(),
                    "nested parallel regions are not supported by parapsp-parfor"
                );
            });
            for i in 0..n {
                let status = poller.poll();
                if status.is_stop() {
                    return status;
                }
                f(0, i);
            }
            self.stats.flush(1, 0, 0);
            return CancelStatus::Continue;
        }
        let stopped = AtomicU8::new(0);
        match schedule {
            Schedule::Block => {
                let threads = self.num_threads;
                self.run(|tid| {
                    for i in block_range(n, threads, tid) {
                        let status = poller.poll();
                        if status.is_stop() {
                            record_stop(&stopped, status);
                            return;
                        }
                        f(tid, i);
                    }
                });
            }
            Schedule::StaticCyclic => {
                let threads = self.num_threads;
                self.run(|tid| {
                    let mut i = tid;
                    while i < n {
                        let status = poller.poll();
                        if status.is_stop() {
                            record_stop(&stopped, status);
                            return;
                        }
                        f(tid, i);
                        i += threads;
                    }
                });
            }
            Schedule::DynamicChunked(chunk) => {
                let chunk = chunk.max(1);
                // Cache-line padding keeps the hot shared counter from
                // false-sharing with whatever else lives on this frame.
                let next = CachePadded::new(AtomicUsize::new(0));
                self.run(|tid| {
                    let mut pops = 0u64;
                    loop {
                        let status = poller.poll();
                        if status.is_stop() {
                            record_stop(&stopped, status);
                            break;
                        }
                        let Some(range) = claim_dynamic(&next, chunk, n) else {
                            break;
                        };
                        pops += 1;
                        for i in range {
                            f(tid, i);
                        }
                    }
                    self.stats.flush(pops, 0, 0);
                });
            }
            Schedule::Guided(min_chunk) => {
                let min_chunk = min_chunk.max(1);
                let threads = self.num_threads;
                let next = CachePadded::new(AtomicUsize::new(0));
                self.run(|tid| {
                    let mut pops = 0u64;
                    loop {
                        let status = poller.poll();
                        if status.is_stop() {
                            record_stop(&stopped, status);
                            break;
                        }
                        let Some(range) = claim_guided(&next, n, threads, min_chunk) else {
                            break;
                        };
                        pops += 1;
                        for i in range {
                            f(tid, i);
                        }
                    }
                    self.stats.flush(pops, 0, 0);
                });
            }
            Schedule::WorkStealing { chunk } => {
                self.work_stealing_region(n, chunk, &poller, &f, &stopped);
            }
        }
        decode_stop(&stopped)
    }

    /// [`Schedule::WorkStealing`] execution: per-worker Chase–Lev deques
    /// seeded with contiguous degree-ordered *blocks* of the iteration
    /// space assigned cyclically, lazy chunk splitting, and cyclic victim
    /// scans once a worker's own deque is dry.
    ///
    /// Placement rationale: each seeded descriptor is a contiguous run of
    /// the (degree-ordered) iteration space, so a worker's consecutive
    /// sources are neighbours in the ordering and its freshly completed
    /// rows stay hot for its own reuse. The blocks are assigned
    /// *cyclically* rather than as one contiguous slab per worker — and
    /// `chunk`-fine over the front of the ordering: the APSP kernel's
    /// row reuse feeds on the globally lowest-numbered (highest-degree)
    /// published rows, and slab placement makes workers start deep in
    /// the tail before those rows exist — measured on BA-3000×4 threads,
    /// slabs cost 2× the queue pops and 2× the O(n) reuse passes of
    /// cyclic placement for the same relaxation count (see DESIGN.md
    /// §10).
    fn work_stealing_region<P, F>(
        &self,
        n: usize,
        chunk: usize,
        poller: &P,
        f: &F,
        stopped: &AtomicU8,
    ) where
        P: Poller,
        F: Fn(usize, usize) + Sync,
    {
        assert!(
            u32::try_from(n).is_ok(),
            "the work-stealing schedule supports at most u32::MAX iterations"
        );
        let chunk = chunk.max(1).min(u32::MAX as usize) as u32;
        let threads = self.num_threads;
        // When the pool is oversubscribed (more workers than cores), the
        // OS runs one worker per timeslice and that worker bursts through
        // its own subsequence far ahead of the global wavefront — costly
        // for consumers that exploit cross-worker execution order, like
        // the APSP kernel's row reuse. A cooperative yield every few
        // claimed chunks makes the scheduler round-robin the workers,
        // restoring a near-global order while keeping the context-switch
        // (and cache-refill) tax a fraction of the claim rate; with a
        // core per worker it never triggers.
        const YIELD_EVERY_CLAIMS: u32 = 1;
        let oversubscribed = std::thread::available_parallelism()
            .map(|cores| threads > cores.get())
            .unwrap_or(false);
        let deques: Vec<StealDeque> = (0..threads).map(|_| StealDeque::new()).collect();
        // Seed every deque on the caller thread, before the region starts:
        // deterministic placement, and the region entry provides the
        // happens-before edge that publishes the seeds to all workers.
        for (w, deque) in deques.iter().enumerate() {
            deque.seed_blocks(n as u32, chunk, w as u32, threads as u32);
        }
        self.run(|tid| {
            let own = &deques[tid];
            let (mut pops, mut steals, mut failed) = (0u64, 0u64, 0u64);
            let mut claims_since_yield = 0u32;
            'work: loop {
                let status = poller.poll();
                if status.is_stop() {
                    record_stop(stopped, status);
                    break 'work;
                }
                let (lo, hi) = if let Some(range) = own.pop() {
                    pops += 1;
                    range
                } else {
                    // Own block is done: scan victims in cyclic order.
                    // `Retry` means a claim race was lost — someone is
                    // making progress — so rescan; a full scan of empty
                    // deques means no claimable work is left (in-flight
                    // remainders are pushed back to their holder's own
                    // deque, which that holder drains before exiting).
                    let mut found = None;
                    'scan: loop {
                        let mut contended = false;
                        for k in 1..threads {
                            match deques[(tid + k) % threads].steal() {
                                Steal::Success(lo, hi) => {
                                    steals += 1;
                                    found = Some((lo, hi));
                                    break 'scan;
                                }
                                Steal::Retry => {
                                    failed += 1;
                                    contended = true;
                                }
                                Steal::Empty => {}
                            }
                        }
                        if !contended {
                            break 'scan;
                        }
                        let status = poller.poll();
                        if status.is_stop() {
                            record_stop(stopped, status);
                            break 'scan;
                        }
                        // A contended rescan on an oversubscribed pool
                        // must hand the core to the racing claimant, not
                        // burn its timeslice spinning.
                        if oversubscribed {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    match found {
                        Some(range) => range,
                        None => break 'work,
                    }
                };
                // Lazy splitting: run the lowest `chunk` indices now and
                // push the remainder back where thieves can take it.
                let split = hi.min(lo.saturating_add(chunk));
                if hi > split {
                    own.push(split, hi);
                }
                for i in lo..split {
                    f(tid, i as usize);
                }
                claims_since_yield += 1;
                if oversubscribed && claims_since_yield >= YIELD_EVERY_CLAIMS {
                    claims_since_yield = 0;
                    std::thread::yield_now();
                }
            }
            self.stats.flush(pops, steals, failed);
        });
    }

    /// Parallel map-reduce over `0..n`: `map(tid, i)` produces a value per
    /// iteration, values are folded per thread with `reduce`, and the
    /// per-thread partials (plus `identity`) are folded on the caller.
    ///
    /// `reduce` must be associative and commutative up to the caller's
    /// tolerance — iteration grouping depends on the schedule.
    ///
    /// ```
    /// use parapsp_parfor::{Schedule, ThreadPool};
    /// let pool = ThreadPool::new(4);
    /// let max = pool.parallel_map_reduce(
    ///     1_000,
    ///     Schedule::Block,
    ///     u64::MIN,
    ///     |_tid, i| (i as u64 * 2_654_435_761) % 1_009,
    ///     |a, b| a.max(b),
    /// );
    /// assert_eq!(max, 1_008);
    /// ```
    pub fn parallel_map_reduce<T, M, R>(
        &self,
        n: usize,
        schedule: Schedule,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send + Clone,
        M: Fn(usize, usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let locals: crate::PerThread<Option<T>> = crate::PerThread::new(self.num_threads);
        self.parallel_for(n, schedule, |tid, i| {
            let value = map(tid, i);
            // SAFETY: each pool thread folds into its own slot.
            let slot = unsafe { locals.get_mut(tid) };
            *slot = Some(match slot.take() {
                Some(acc) => reduce(acc, value),
                None => value,
            });
        });
        locals
            .into_inner()
            .into_iter()
            .flatten()
            .fold(identity, reduce)
    }

    /// Cancellable [`parallel_map_reduce`](ThreadPool::parallel_map_reduce):
    /// on a stop, the returned value folds exactly the iterations that ran
    /// (a valid partial aggregate), paired with the stop status.
    pub fn parallel_map_reduce_cancellable<T, M, R>(
        &self,
        n: usize,
        schedule: Schedule,
        token: &CancelToken,
        identity: T,
        map: M,
        reduce: R,
    ) -> (T, CancelStatus)
    where
        T: Send + Clone,
        M: Fn(usize, usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let locals: crate::PerThread<Option<T>> = crate::PerThread::new(self.num_threads);
        let status = self.parallel_for_cancellable(n, schedule, token, |tid, i| {
            let value = map(tid, i);
            // SAFETY: each pool thread folds into its own slot.
            let slot = unsafe { locals.get_mut(tid) };
            *slot = Some(match slot.take() {
                Some(acc) => reduce(acc, value),
                None => value,
            });
        });
        let folded = locals
            .into_inner()
            .into_iter()
            .flatten()
            .fold(identity, reduce);
        (folded, status)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock();
            slot.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            // A worker only panics for bugs outside user closures (those are
            // caught); surface such bugs instead of hiding them.
            if handle.join().is_err() {
                eprintln!("parapsp-parfor: worker thread terminated abnormally");
            }
        }
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen_epoch {
                    seen_epoch = slot.epoch;
                    break slot.job.expect("epoch advanced without a job");
                }
                shared.work_cv.wait(&mut slot);
            }
        };

        INSIDE_REGION.with(|flag| flag.set(true));
        // SAFETY: see `JobRef`'s `Send` impl — the caller of `run` keeps the
        // closure alive until we decrement `remaining` below.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.ptr)(tid) }));
        INSIDE_REGION.with(|flag| flag.set(false));

        let mut slot = shared.slot.lock();
        if result.is_err() {
            slot.worker_panicked = true;
        }
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_thread_runs_once_per_region() {
        let pool = ThreadPool::new(4);
        for _ in 0..50 {
            let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(|tid| {
                counts[tid].fetch_add(1, Ordering::Relaxed);
            });
            for c in &counts {
                assert_eq!(c.load(Ordering::Relaxed), 1);
            }
        }
    }

    fn check_coverage(threads: usize, n: usize, schedule: Schedule) {
        let pool = ThreadPool::new(threads);
        let visits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, schedule, |tid, i| {
            assert!(tid < threads);
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(
                v.load(Ordering::Relaxed),
                1,
                "index {i} visited wrong count"
            );
        }
    }

    #[test]
    fn all_schedules_cover_all_indices_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            for n in [0usize, 1, 2, 7, 64, 1000] {
                for schedule in [
                    Schedule::Block,
                    Schedule::StaticCyclic,
                    Schedule::DynamicChunked(1),
                    Schedule::DynamicChunked(7),
                    Schedule::Guided(1),
                    Schedule::Guided(4),
                    Schedule::WorkStealing { chunk: 1 },
                    Schedule::WorkStealing { chunk: 8 },
                ] {
                    check_coverage(threads, n, schedule);
                }
            }
        }
    }

    #[test]
    fn static_cyclic_assigns_by_modulo() {
        let threads = 4;
        let pool = ThreadPool::new(threads);
        let owner: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(usize::MAX)).collect();
        pool.parallel_for(40, Schedule::StaticCyclic, |tid, i| {
            owner[i].store(tid, Ordering::Relaxed);
        });
        for (i, o) in owner.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), i % threads);
        }
    }

    #[test]
    fn block_assigns_contiguously() {
        let threads = 3;
        let pool = ThreadPool::new(threads);
        let owner: Vec<AtomicUsize> = (0..10).map(|_| AtomicUsize::new(usize::MAX)).collect();
        pool.parallel_for(10, Schedule::Block, |tid, i| {
            owner[i].store(tid, Ordering::Relaxed);
        });
        let owners: Vec<usize> = owner.iter().map(|o| o.load(Ordering::Relaxed)).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn dynamic_cyclic_claims_in_issue_order() {
        // The claim sequence observed through a mutex must be exactly 0..n,
        // which is the property the paper relies on for degree ordering.
        let pool = ThreadPool::new(4);
        let log = PlMutex::new(Vec::new());
        pool.parallel_for(200, Schedule::dynamic_cyclic(), |_tid, i| {
            log.lock().push(i);
        });
        let mut seen = log.into_inner();
        // Claims are in order; execution interleaves, but each index appears
        // exactly once and the multiset is complete.
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_many_times() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.parallel_for(17, Schedule::dynamic_cyclic(), |_tid, _i| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 17);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        check_coverage(8, 3, Schedule::Block);
        check_coverage(8, 3, Schedule::StaticCyclic);
        check_coverage(8, 3, Schedule::dynamic_cyclic());
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(100, Schedule::dynamic_cyclic(), |_tid, i| {
                if i == 57 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still work after a panic.
        let count = AtomicUsize::new(0);
        pool.parallel_for(10, Schedule::Block, |_tid, _i| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn caller_thread_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 0 {
                    panic!("caller boom");
                }
            });
        }));
        assert!(result.is_err());
        // Reusable afterwards.
        pool.run(|_tid| {});
    }

    #[test]
    fn nested_regions_panic_cleanly() {
        let pool = ThreadPool::new(2);
        let inner = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|_tid| {
                inner.run(|_t| {});
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        let log = PlMutex::new(Vec::new());
        pool.parallel_for(10, Schedule::dynamic_cyclic(), |tid, i| {
            assert_eq!(tid, 0);
            log.lock().push(i);
        });
        assert_eq!(log.into_inner(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn guided_claims_cover_in_order() {
        // The claim sequence is monotone: sorting the observed claim order
        // must reproduce 0..n, and chunks shrink over time by construction.
        let pool = ThreadPool::new(4);
        let log = PlMutex::new(Vec::new());
        pool.parallel_for(500, Schedule::Guided(2), |_tid, i| {
            log.lock().push(i);
        });
        let mut seen = log.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn work_stealing_steals_when_one_worker_is_stuck() {
        // Deterministic imbalance: index 0 (the head of worker 0's block)
        // refuses to finish until every other index has run. Workers 1–3
        // must therefore drain their own blocks and steal the rest of
        // worker 0's block — with chunk 1 the stuck index is the only one
        // worker 0 has claimed, so the steal is guaranteed, not racy.
        let pool = ThreadPool::new(4);
        pool.take_schedule_stats();
        const N: usize = 256;
        let done = AtomicUsize::new(0);
        pool.parallel_for(N, Schedule::WorkStealing { chunk: 1 }, |_tid, i| {
            if i == 0 {
                while done.load(Ordering::Relaxed) < N - 1 {
                    std::thread::yield_now();
                }
            } else {
                done.fetch_add(1, Ordering::Relaxed);
            }
        });
        let stats = pool.take_schedule_stats();
        assert!(stats.steals >= 1, "expected nonzero steals: {stats:?}");
        assert!(stats.pops >= 1, "{stats:?}");
        assert_eq!(stats.claims() as usize, N, "{stats:?}");
    }

    #[test]
    fn schedule_stats_count_dynamic_claims_and_reset() {
        let pool = ThreadPool::new(3);
        pool.take_schedule_stats();
        pool.parallel_for(100, Schedule::DynamicChunked(10), |_tid, _i| {});
        let stats = pool.schedule_stats();
        assert_eq!(stats.pops, 10, "{stats:?}");
        assert_eq!(stats.steals, 0, "{stats:?}");
        // `take` drains the accumulator.
        assert_eq!(pool.take_schedule_stats(), stats);
        assert_eq!(pool.schedule_stats(), ScheduleStats::default());
        // Guided claims are counted too; static schedules claim nothing.
        pool.parallel_for(100, Schedule::Guided(5), |_tid, _i| {});
        assert!(pool.take_schedule_stats().pops >= 1);
        pool.parallel_for(100, Schedule::Block, |_tid, _i| {});
        pool.parallel_for(100, Schedule::StaticCyclic, |_tid, _i| {});
        assert_eq!(pool.take_schedule_stats(), ScheduleStats::default());
    }

    #[test]
    fn work_stealing_claims_account_for_every_index() {
        // pops + steals must cover exactly ceil-ish chunk counts: with
        // chunk c every claim executes at least 1 and at most c indices,
        // so claims ∈ [n/c, n].
        for threads in [2usize, 4] {
            for (n, chunk) in [(1usize, 4usize), (97, 4), (1000, 8)] {
                let pool = ThreadPool::new(threads);
                pool.take_schedule_stats();
                let count = AtomicUsize::new(0);
                pool.parallel_for(n, Schedule::WorkStealing { chunk }, |_tid, _i| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(count.load(Ordering::Relaxed), n);
                let stats = pool.take_schedule_stats();
                assert!(stats.claims() as usize >= n.div_ceil(chunk), "{stats:?}");
                assert!(stats.claims() as usize <= n, "{stats:?}");
            }
        }
    }

    #[test]
    fn map_reduce_sums_and_maxes() {
        let pool = ThreadPool::new(4);
        for schedule in [
            Schedule::Block,
            Schedule::StaticCyclic,
            Schedule::dynamic_cyclic(),
            Schedule::Guided(1),
            Schedule::work_stealing(),
        ] {
            let sum =
                pool.parallel_map_reduce(1000, schedule, 0u64, |_t, i| i as u64, |a, b| a + b);
            assert_eq!(sum, 999 * 1000 / 2, "{schedule:?}");
        }
        // Empty range yields the identity.
        let empty =
            pool.parallel_map_reduce(0, Schedule::Block, 42u64, |_t, i| i as u64, |a, b| a + b);
        assert_eq!(empty, 42);
        // Single-threaded pool takes the inline path.
        let single = ThreadPool::new(1);
        let sum =
            single.parallel_map_reduce(10, Schedule::Block, 0u64, |_t, i| i as u64, |a, b| a + b);
        assert_eq!(sum, 45);
    }

    const ALL_SCHEDULES: [Schedule; 5] = [
        Schedule::Block,
        Schedule::StaticCyclic,
        Schedule::DynamicChunked(1),
        Schedule::Guided(2),
        Schedule::WorkStealing { chunk: 4 },
    ];

    #[test]
    fn cancellable_loop_without_cancel_covers_everything() {
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            for schedule in ALL_SCHEDULES {
                let token = CancelToken::new();
                let visits: Vec<AtomicUsize> = (0..300).map(|_| AtomicUsize::new(0)).collect();
                let status = pool.parallel_for_cancellable(300, schedule, &token, |_tid, i| {
                    visits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(status, CancelStatus::Continue, "{schedule:?}");
                for v in &visits {
                    assert_eq!(v.load(Ordering::Relaxed), 1, "{schedule:?}");
                }
            }
        }
    }

    #[test]
    fn pre_cancelled_token_runs_zero_iterations() {
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            for schedule in ALL_SCHEDULES {
                let token = CancelToken::new();
                token.cancel();
                let ran = AtomicUsize::new(0);
                let status = pool.parallel_for_cancellable(100, schedule, &token, |_tid, _i| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(status, CancelStatus::Cancelled, "{schedule:?}");
                assert_eq!(ran.load(Ordering::Relaxed), 0, "{schedule:?}");
            }
        }
    }

    #[test]
    fn poll_budget_stops_partway_without_duplicates() {
        for threads in [1usize, 3] {
            let pool = ThreadPool::new(threads);
            for schedule in ALL_SCHEDULES {
                let token = crate::CancelToken::with_poll_budget(25);
                let visits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
                let status = pool.parallel_for_cancellable(500, schedule, &token, |_tid, i| {
                    visits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(status, CancelStatus::Cancelled, "{schedule:?}");
                let ran: usize = visits.iter().map(|v| v.load(Ordering::Relaxed)).sum();
                assert!(ran < 500, "{schedule:?}: too much work after cancel");
                for (i, v) in visits.iter().enumerate() {
                    assert!(
                        v.load(Ordering::Relaxed) <= 1,
                        "{schedule:?}: {i} ran twice"
                    );
                }
            }
        }
    }

    #[test]
    fn elapsed_deadline_reports_deadline_exceeded() {
        let pool = ThreadPool::new(4);
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let ran = AtomicUsize::new(0);
        let status =
            pool.parallel_for_cancellable(64, Schedule::dynamic_cyclic(), &token, |_tid, _i| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(status, CancelStatus::DeadlineExceeded);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cancellable_map_reduce_returns_partial_fold() {
        let pool = ThreadPool::new(4);
        // No cancel: matches the plain version.
        let token = CancelToken::new();
        let (sum, status) = pool.parallel_map_reduce_cancellable(
            1000,
            Schedule::Block,
            &token,
            0u64,
            |_t, i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(status, CancelStatus::Continue);
        assert_eq!(sum, 999 * 1000 / 2);
        // Cancelled up front: identity comes back untouched.
        let token = CancelToken::new();
        token.cancel();
        let (sum, status) = pool.parallel_map_reduce_cancellable(
            1000,
            Schedule::Block,
            &token,
            7u64,
            |_t, i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(status, CancelStatus::Cancelled);
        assert_eq!(sum, 7);
    }

    #[test]
    fn borrows_local_data_without_static_lifetime() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = ThreadPool::new(4);
        let sum = AtomicUsize::new(0);
        pool.parallel_for(data.len(), Schedule::Block, |_tid, i| {
            sum.fetch_add(data[i] as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}
