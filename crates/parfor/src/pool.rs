//! A persistent thread pool with OpenMP-style *broadcast* parallel regions.
//!
//! Unlike a task queue, every parallel region runs the same closure on all
//! threads of the pool (each with a stable thread id), exactly like an
//! OpenMP `parallel` construct. [`ThreadPool::parallel_for`] layers the three
//! loop schedules from [`Schedule`] on top.
//!
//! The calling thread participates as thread 0, so a pool of `T` threads
//! spawns `T - 1` OS workers. A single-threaded pool executes regions inline
//! with no synchronization at all, which keeps 1-thread baseline timings
//! honest.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::cancel::{CancelStatus, CancelToken};
use crate::schedule::{block_range, Schedule};

/// Store-once slot recording the first stop status any thread observed.
/// Encoding: 0 = continue, 1 = cancelled, 2 = deadline exceeded.
fn record_stop(slot: &AtomicU8, status: CancelStatus) {
    let code = match status {
        CancelStatus::Continue => return,
        CancelStatus::Cancelled => 1,
        CancelStatus::DeadlineExceeded => 2,
    };
    let _ = slot.compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
}

fn decode_stop(slot: &AtomicU8) -> CancelStatus {
    match slot.load(Ordering::Relaxed) {
        0 => CancelStatus::Continue,
        1 => CancelStatus::Cancelled,
        _ => CancelStatus::DeadlineExceeded,
    }
}

/// A broadcast job: invoked once per pool thread with that thread's id.
///
/// The pointer is lifetime-erased; see the safety argument in
/// [`ThreadPool::run`].
#[derive(Clone, Copy)]
struct JobRef {
    ptr: *const (dyn Fn(usize) + Sync),
}

// SAFETY: `JobRef` is only ever dereferenced while the `run` call that
// created it is still blocked waiting for all workers, so the referent is
// live, and the referent is `Sync` so shared calls from many threads are
// allowed.
unsafe impl Send for JobRef {}

struct Slot {
    /// Monotonic counter identifying the current parallel region.
    epoch: u64,
    /// Job of the current epoch, if a region is active.
    job: Option<JobRef>,
    /// Workers that have not yet finished the current region.
    remaining: usize,
    /// Whether any worker's closure panicked during the current region.
    worker_panicked: bool,
    /// Set by `Drop` to terminate the worker loops.
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Workers park here waiting for a new epoch.
    work_cv: Condvar,
    /// The caller parks here waiting for `remaining == 0`.
    done_cv: Condvar,
}

thread_local! {
    /// Guards against nested parallel regions, which would deadlock: a
    /// worker would wait for an epoch that can only be announced by itself.
    static INSIDE_REGION: Cell<bool> = const { Cell::new(false) };
}

/// A fixed-size pool of worker threads supporting OpenMP-like parallel
/// regions and scheduled parallel loops.
///
/// ```
/// use parapsp_parfor::{ThreadPool, Schedule};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(3);
/// assert_eq!(pool.num_threads(), 3);
///
/// let hits = AtomicUsize::new(0);
/// pool.run(|tid| {
///     assert!(tid < 3);
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 3);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    num_threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `num_threads` total threads (the caller counts as
    /// thread 0, so `num_threads - 1` OS threads are spawned).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "a thread pool needs at least one thread");
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                remaining: 0,
                worker_panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..num_threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("parfor-worker-{tid}"))
                    .spawn(move || worker_loop(&shared, tid))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            num_threads,
        }
    }

    /// Number of threads participating in each parallel region.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Executes `f(tid)` once on every pool thread (an OpenMP `parallel`
    /// region) and returns when all of them have finished.
    ///
    /// Panics in any thread's closure are propagated to the caller after the
    /// whole region has completed, so the pool stays usable afterwards.
    ///
    /// # Panics
    ///
    /// Panics if called from inside another region of any pool (nested
    /// parallelism is not supported, as in the paper's flat OpenMP usage).
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        INSIDE_REGION.with(|flag| {
            assert!(
                !flag.get(),
                "nested parallel regions are not supported by parapsp-parfor"
            );
            flag.set(true);
        });
        // Make sure the flag is cleared even if `f` panics on thread 0.
        struct ResetGuard;
        impl Drop for ResetGuard {
            fn drop(&mut self) {
                INSIDE_REGION.with(|flag| flag.set(false));
            }
        }
        let _guard = ResetGuard;

        if self.num_threads == 1 {
            f(0);
            return;
        }

        let wide: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: we erase the lifetime of `f` to hand it to the workers.
        // This is sound because this function does not return (and `f` is
        // not dropped) until `remaining == 0`, i.e. every worker has
        // finished calling the closure and will never touch it again.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(wide)
        };
        let job = JobRef {
            ptr: erased as *const _,
        };

        {
            let mut slot = self.shared.slot.lock();
            debug_assert!(slot.job.is_none(), "previous region not cleaned up");
            slot.epoch += 1;
            slot.job = Some(job);
            slot.remaining = self.num_threads - 1;
            slot.worker_panicked = false;
            self.shared.work_cv.notify_all();
        }

        // The caller participates as thread 0. Catch its panic so we can
        // still wait for the workers (they borrow `f`!) before unwinding.
        let own_result = catch_unwind(AssertUnwindSafe(|| f(0)));

        let worker_panicked = {
            let mut slot = self.shared.slot.lock();
            while slot.remaining > 0 {
                self.shared.done_cv.wait(&mut slot);
            }
            slot.job = None;
            slot.worker_panicked
        };

        if let Err(payload) = own_result {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a parapsp-parfor worker thread panicked inside a parallel region");
        }
    }

    /// Runs `f(tid, i)` for every `i` in `0..n`, assigning iterations to
    /// threads according to `schedule`. Returns after all iterations finish.
    ///
    /// With [`Schedule::DynamicChunked(1)`](Schedule::DynamicChunked) the
    /// global order in which iterations are *claimed* equals the iteration
    /// order, which is what makes degree-ordered APSP effective (paper §3.2).
    pub fn parallel_for<F>(&self, n: usize, schedule: Schedule, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.num_threads == 1 {
            // Inline fast path: identical iteration order for every schedule.
            INSIDE_REGION.with(|flag| {
                assert!(
                    !flag.get(),
                    "nested parallel regions are not supported by parapsp-parfor"
                );
            });
            for i in 0..n {
                f(0, i);
            }
            return;
        }
        match schedule {
            Schedule::Block => {
                let threads = self.num_threads;
                self.run(|tid| {
                    for i in block_range(n, threads, tid) {
                        f(tid, i);
                    }
                });
            }
            Schedule::StaticCyclic => {
                let threads = self.num_threads;
                self.run(|tid| {
                    let mut i = tid;
                    while i < n {
                        f(tid, i);
                        i += threads;
                    }
                });
            }
            Schedule::DynamicChunked(chunk) => {
                let chunk = chunk.max(1);
                let next = AtomicUsize::new(0);
                self.run(|tid| loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        f(tid, i);
                    }
                });
            }
            Schedule::Guided(min_chunk) => {
                let min_chunk = min_chunk.max(1);
                let threads = self.num_threads;
                let next = AtomicUsize::new(0);
                self.run(|tid| {
                    let mut observed = next.load(Ordering::Relaxed);
                    while observed < n {
                        // OpenMP guided: claim (remaining / 2T), floored at
                        // min_chunk, via CAS so chunks shrink as work drains.
                        let remaining = n - observed;
                        let chunk = (remaining / (2 * threads)).max(min_chunk).min(remaining);
                        match next.compare_exchange_weak(
                            observed,
                            observed + chunk,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(start) => {
                                for i in start..start + chunk {
                                    f(tid, i);
                                }
                                observed = next.load(Ordering::Relaxed);
                            }
                            Err(current) => observed = current,
                        }
                    }
                });
            }
        }
    }

    /// Like [`parallel_for`](ThreadPool::parallel_for), but polls `token` at
    /// every chunk boundary so the loop can stop cooperatively: each thread
    /// finishes the iteration it is on, claims no further work, and the call
    /// returns the first stop status any thread observed
    /// ([`CancelStatus::Continue`] when the loop ran to completion).
    ///
    /// Polling granularity per schedule: `Block` and `StaticCyclic` poll
    /// before every iteration (their chunks are fixed up front, so the chunk
    /// boundary is the iteration); `DynamicChunked` and `Guided` poll before
    /// claiming each chunk. Iterations that already started always run to
    /// completion — cancellation never tears a row in half.
    pub fn parallel_for_cancellable<F>(
        &self,
        n: usize,
        schedule: Schedule,
        token: &CancelToken,
        f: F,
    ) -> CancelStatus
    where
        F: Fn(usize, usize) + Sync,
    {
        if n == 0 {
            return token.status();
        }
        if self.num_threads == 1 {
            INSIDE_REGION.with(|flag| {
                assert!(
                    !flag.get(),
                    "nested parallel regions are not supported by parapsp-parfor"
                );
            });
            for i in 0..n {
                let status = token.poll();
                if status.is_stop() {
                    return status;
                }
                f(0, i);
            }
            return CancelStatus::Continue;
        }
        let stopped = AtomicU8::new(0);
        match schedule {
            Schedule::Block => {
                let threads = self.num_threads;
                self.run(|tid| {
                    for i in block_range(n, threads, tid) {
                        let status = token.poll();
                        if status.is_stop() {
                            record_stop(&stopped, status);
                            return;
                        }
                        f(tid, i);
                    }
                });
            }
            Schedule::StaticCyclic => {
                let threads = self.num_threads;
                self.run(|tid| {
                    let mut i = tid;
                    while i < n {
                        let status = token.poll();
                        if status.is_stop() {
                            record_stop(&stopped, status);
                            return;
                        }
                        f(tid, i);
                        i += threads;
                    }
                });
            }
            Schedule::DynamicChunked(chunk) => {
                let chunk = chunk.max(1);
                let next = AtomicUsize::new(0);
                self.run(|tid| loop {
                    let status = token.poll();
                    if status.is_stop() {
                        record_stop(&stopped, status);
                        break;
                    }
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        f(tid, i);
                    }
                });
            }
            Schedule::Guided(min_chunk) => {
                let min_chunk = min_chunk.max(1);
                let threads = self.num_threads;
                let next = AtomicUsize::new(0);
                self.run(|tid| {
                    let mut observed = next.load(Ordering::Relaxed);
                    while observed < n {
                        let status = token.poll();
                        if status.is_stop() {
                            record_stop(&stopped, status);
                            return;
                        }
                        let remaining = n - observed;
                        let chunk = (remaining / (2 * threads)).max(min_chunk).min(remaining);
                        match next.compare_exchange_weak(
                            observed,
                            observed + chunk,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(start) => {
                                for i in start..start + chunk {
                                    f(tid, i);
                                }
                                observed = next.load(Ordering::Relaxed);
                            }
                            Err(current) => observed = current,
                        }
                    }
                });
            }
        }
        decode_stop(&stopped)
    }

    /// Parallel map-reduce over `0..n`: `map(tid, i)` produces a value per
    /// iteration, values are folded per thread with `reduce`, and the
    /// per-thread partials (plus `identity`) are folded on the caller.
    ///
    /// `reduce` must be associative and commutative up to the caller's
    /// tolerance — iteration grouping depends on the schedule.
    ///
    /// ```
    /// use parapsp_parfor::{Schedule, ThreadPool};
    /// let pool = ThreadPool::new(4);
    /// let max = pool.parallel_map_reduce(
    ///     1_000,
    ///     Schedule::Block,
    ///     u64::MIN,
    ///     |_tid, i| (i as u64 * 2_654_435_761) % 1_009,
    ///     |a, b| a.max(b),
    /// );
    /// assert_eq!(max, 1_008);
    /// ```
    pub fn parallel_map_reduce<T, M, R>(
        &self,
        n: usize,
        schedule: Schedule,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send + Clone,
        M: Fn(usize, usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let locals: crate::PerThread<Option<T>> = crate::PerThread::new(self.num_threads);
        self.parallel_for(n, schedule, |tid, i| {
            let value = map(tid, i);
            // SAFETY: each pool thread folds into its own slot.
            let slot = unsafe { locals.get_mut(tid) };
            *slot = Some(match slot.take() {
                Some(acc) => reduce(acc, value),
                None => value,
            });
        });
        locals
            .into_inner()
            .into_iter()
            .flatten()
            .fold(identity, reduce)
    }

    /// Cancellable [`parallel_map_reduce`](ThreadPool::parallel_map_reduce):
    /// on a stop, the returned value folds exactly the iterations that ran
    /// (a valid partial aggregate), paired with the stop status.
    pub fn parallel_map_reduce_cancellable<T, M, R>(
        &self,
        n: usize,
        schedule: Schedule,
        token: &CancelToken,
        identity: T,
        map: M,
        reduce: R,
    ) -> (T, CancelStatus)
    where
        T: Send + Clone,
        M: Fn(usize, usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let locals: crate::PerThread<Option<T>> = crate::PerThread::new(self.num_threads);
        let status = self.parallel_for_cancellable(n, schedule, token, |tid, i| {
            let value = map(tid, i);
            // SAFETY: each pool thread folds into its own slot.
            let slot = unsafe { locals.get_mut(tid) };
            *slot = Some(match slot.take() {
                Some(acc) => reduce(acc, value),
                None => value,
            });
        });
        let folded = locals
            .into_inner()
            .into_iter()
            .flatten()
            .fold(identity, reduce);
        (folded, status)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock();
            slot.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            // A worker only panics for bugs outside user closures (those are
            // caught); surface such bugs instead of hiding them.
            if handle.join().is_err() {
                eprintln!("parapsp-parfor: worker thread terminated abnormally");
            }
        }
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen_epoch {
                    seen_epoch = slot.epoch;
                    break slot.job.expect("epoch advanced without a job");
                }
                shared.work_cv.wait(&mut slot);
            }
        };

        INSIDE_REGION.with(|flag| flag.set(true));
        // SAFETY: see `JobRef`'s `Send` impl — the caller of `run` keeps the
        // closure alive until we decrement `remaining` below.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.ptr)(tid) }));
        INSIDE_REGION.with(|flag| flag.set(false));

        let mut slot = shared.slot.lock();
        if result.is_err() {
            slot.worker_panicked = true;
        }
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_thread_runs_once_per_region() {
        let pool = ThreadPool::new(4);
        for _ in 0..50 {
            let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(|tid| {
                counts[tid].fetch_add(1, Ordering::Relaxed);
            });
            for c in &counts {
                assert_eq!(c.load(Ordering::Relaxed), 1);
            }
        }
    }

    fn check_coverage(threads: usize, n: usize, schedule: Schedule) {
        let pool = ThreadPool::new(threads);
        let visits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, schedule, |tid, i| {
            assert!(tid < threads);
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(
                v.load(Ordering::Relaxed),
                1,
                "index {i} visited wrong count"
            );
        }
    }

    #[test]
    fn all_schedules_cover_all_indices_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            for n in [0usize, 1, 2, 7, 64, 1000] {
                for schedule in [
                    Schedule::Block,
                    Schedule::StaticCyclic,
                    Schedule::DynamicChunked(1),
                    Schedule::DynamicChunked(7),
                    Schedule::Guided(1),
                    Schedule::Guided(4),
                ] {
                    check_coverage(threads, n, schedule);
                }
            }
        }
    }

    #[test]
    fn static_cyclic_assigns_by_modulo() {
        let threads = 4;
        let pool = ThreadPool::new(threads);
        let owner: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(usize::MAX)).collect();
        pool.parallel_for(40, Schedule::StaticCyclic, |tid, i| {
            owner[i].store(tid, Ordering::Relaxed);
        });
        for (i, o) in owner.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), i % threads);
        }
    }

    #[test]
    fn block_assigns_contiguously() {
        let threads = 3;
        let pool = ThreadPool::new(threads);
        let owner: Vec<AtomicUsize> = (0..10).map(|_| AtomicUsize::new(usize::MAX)).collect();
        pool.parallel_for(10, Schedule::Block, |tid, i| {
            owner[i].store(tid, Ordering::Relaxed);
        });
        let owners: Vec<usize> = owner.iter().map(|o| o.load(Ordering::Relaxed)).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn dynamic_cyclic_claims_in_issue_order() {
        // The claim sequence observed through a mutex must be exactly 0..n,
        // which is the property the paper relies on for degree ordering.
        let pool = ThreadPool::new(4);
        let log = PlMutex::new(Vec::new());
        pool.parallel_for(200, Schedule::dynamic_cyclic(), |_tid, i| {
            log.lock().push(i);
        });
        let mut seen = log.into_inner();
        // Claims are in order; execution interleaves, but each index appears
        // exactly once and the multiset is complete.
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_many_times() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.parallel_for(17, Schedule::dynamic_cyclic(), |_tid, _i| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 17);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        check_coverage(8, 3, Schedule::Block);
        check_coverage(8, 3, Schedule::StaticCyclic);
        check_coverage(8, 3, Schedule::dynamic_cyclic());
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(100, Schedule::dynamic_cyclic(), |_tid, i| {
                if i == 57 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still work after a panic.
        let count = AtomicUsize::new(0);
        pool.parallel_for(10, Schedule::Block, |_tid, _i| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn caller_thread_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 0 {
                    panic!("caller boom");
                }
            });
        }));
        assert!(result.is_err());
        // Reusable afterwards.
        pool.run(|_tid| {});
    }

    #[test]
    fn nested_regions_panic_cleanly() {
        let pool = ThreadPool::new(2);
        let inner = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|_tid| {
                inner.run(|_t| {});
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        let log = PlMutex::new(Vec::new());
        pool.parallel_for(10, Schedule::dynamic_cyclic(), |tid, i| {
            assert_eq!(tid, 0);
            log.lock().push(i);
        });
        assert_eq!(log.into_inner(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn guided_claims_cover_in_order() {
        // The claim sequence is monotone: sorting the observed claim order
        // must reproduce 0..n, and chunks shrink over time by construction.
        let pool = ThreadPool::new(4);
        let log = PlMutex::new(Vec::new());
        pool.parallel_for(500, Schedule::Guided(2), |_tid, i| {
            log.lock().push(i);
        });
        let mut seen = log.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn map_reduce_sums_and_maxes() {
        let pool = ThreadPool::new(4);
        for schedule in [
            Schedule::Block,
            Schedule::StaticCyclic,
            Schedule::dynamic_cyclic(),
            Schedule::Guided(1),
        ] {
            let sum =
                pool.parallel_map_reduce(1000, schedule, 0u64, |_t, i| i as u64, |a, b| a + b);
            assert_eq!(sum, 999 * 1000 / 2, "{schedule:?}");
        }
        // Empty range yields the identity.
        let empty =
            pool.parallel_map_reduce(0, Schedule::Block, 42u64, |_t, i| i as u64, |a, b| a + b);
        assert_eq!(empty, 42);
        // Single-threaded pool takes the inline path.
        let single = ThreadPool::new(1);
        let sum =
            single.parallel_map_reduce(10, Schedule::Block, 0u64, |_t, i| i as u64, |a, b| a + b);
        assert_eq!(sum, 45);
    }

    const ALL_SCHEDULES: [Schedule; 4] = [
        Schedule::Block,
        Schedule::StaticCyclic,
        Schedule::DynamicChunked(1),
        Schedule::Guided(2),
    ];

    #[test]
    fn cancellable_loop_without_cancel_covers_everything() {
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            for schedule in ALL_SCHEDULES {
                let token = CancelToken::new();
                let visits: Vec<AtomicUsize> = (0..300).map(|_| AtomicUsize::new(0)).collect();
                let status = pool.parallel_for_cancellable(300, schedule, &token, |_tid, i| {
                    visits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(status, CancelStatus::Continue, "{schedule:?}");
                for v in &visits {
                    assert_eq!(v.load(Ordering::Relaxed), 1, "{schedule:?}");
                }
            }
        }
    }

    #[test]
    fn pre_cancelled_token_runs_zero_iterations() {
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            for schedule in ALL_SCHEDULES {
                let token = CancelToken::new();
                token.cancel();
                let ran = AtomicUsize::new(0);
                let status = pool.parallel_for_cancellable(100, schedule, &token, |_tid, _i| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(status, CancelStatus::Cancelled, "{schedule:?}");
                assert_eq!(ran.load(Ordering::Relaxed), 0, "{schedule:?}");
            }
        }
    }

    #[test]
    fn poll_budget_stops_partway_without_duplicates() {
        for threads in [1usize, 3] {
            let pool = ThreadPool::new(threads);
            for schedule in ALL_SCHEDULES {
                let token = crate::CancelToken::with_poll_budget(25);
                let visits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
                let status = pool.parallel_for_cancellable(500, schedule, &token, |_tid, i| {
                    visits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(status, CancelStatus::Cancelled, "{schedule:?}");
                let ran: usize = visits.iter().map(|v| v.load(Ordering::Relaxed)).sum();
                assert!(ran < 500, "{schedule:?}: too much work after cancel");
                for (i, v) in visits.iter().enumerate() {
                    assert!(
                        v.load(Ordering::Relaxed) <= 1,
                        "{schedule:?}: {i} ran twice"
                    );
                }
            }
        }
    }

    #[test]
    fn elapsed_deadline_reports_deadline_exceeded() {
        let pool = ThreadPool::new(4);
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let ran = AtomicUsize::new(0);
        let status =
            pool.parallel_for_cancellable(64, Schedule::dynamic_cyclic(), &token, |_tid, _i| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(status, CancelStatus::DeadlineExceeded);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cancellable_map_reduce_returns_partial_fold() {
        let pool = ThreadPool::new(4);
        // No cancel: matches the plain version.
        let token = CancelToken::new();
        let (sum, status) = pool.parallel_map_reduce_cancellable(
            1000,
            Schedule::Block,
            &token,
            0u64,
            |_t, i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(status, CancelStatus::Continue);
        assert_eq!(sum, 999 * 1000 / 2);
        // Cancelled up front: identity comes back untouched.
        let token = CancelToken::new();
        token.cancel();
        let (sum, status) = pool.parallel_map_reduce_cancellable(
            1000,
            Schedule::Block,
            &token,
            7u64,
            |_t, i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(status, CancelStatus::Cancelled);
        assert_eq!(sum, 7);
    }

    #[test]
    fn borrows_local_data_without_static_lifetime() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = ThreadPool::new(4);
        let sum = AtomicUsize::new(0);
        pool.parallel_for(data.len(), Schedule::Block, |_tid, i| {
            sum.fetch_add(data[i] as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}
