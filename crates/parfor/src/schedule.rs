//! Loop-scheduling policies mirroring the OpenMP `schedule` clause.

/// How iterations of a [`ThreadPool::parallel_for`](crate::ThreadPool::parallel_for)
/// loop are assigned to worker threads.
///
/// The three variants correspond one-to-one to the schemes evaluated in the
/// paper's Figure 1 (scheduling-scheme effect on ParAlg2):
///
/// | Paper name       | OpenMP clause            | Variant                 |
/// |------------------|--------------------------|-------------------------|
/// | block partition  | default `parallel for`   | [`Schedule::Block`]     |
/// | static-cyclic    | `schedule(static, 1)`    | [`Schedule::StaticCyclic`] |
/// | dynamic-cyclic   | `schedule(dynamic, 1)`   | [`Schedule::DynamicChunked`]`(1)` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Each thread receives one contiguous block of iterations
    /// (OpenMP's default static partitioning).
    Block,
    /// Iteration `i` is executed by thread `i mod num_threads`
    /// (`schedule(static, 1)`).
    StaticCyclic,
    /// Threads claim the next `chunk` iterations from a shared atomic
    /// counter (`schedule(dynamic, chunk)`). With `chunk == 1` this is the
    /// paper's *dynamic-cyclic* scheme: the global claim order is exactly
    /// the iteration order, so a degree-sorted loop issues sources in the
    /// intended order.
    DynamicChunked(usize),
    /// OpenMP's `schedule(guided, min_chunk)`: threads claim exponentially
    /// shrinking chunks (half the remaining work divided by the thread
    /// count, never below `min_chunk`). Fewer claims than dynamic while
    /// still balancing the tail; claim order still equals iteration order.
    Guided(usize),
    /// Locality-aware work stealing: each worker starts on its own
    /// contiguous block of the iteration space (the same partition as
    /// [`Schedule::Block`]), held in a per-worker Chase–Lev-style deque
    /// seeded by repeated halving, and executes it in ascending order in
    /// `chunk`-sized pieces. A worker whose deque runs dry steals the
    /// top descriptor — roughly half of a victim's remaining block — so
    /// skewed per-iteration costs balance without every claim hammering
    /// one shared counter. Results are schedule-invariant: every index
    /// still runs exactly once (see DESIGN.md §10).
    WorkStealing {
        /// Number of consecutive iterations a worker executes per claim
        /// from its own deque (values below 1 are treated as 1).
        chunk: usize,
    },
}

impl Schedule {
    /// Default chunk for [`Schedule::WorkStealing`]: small enough to keep
    /// the tail balanced, large enough to amortize deque traffic.
    pub const DEFAULT_STEAL_CHUNK: usize = 8;

    /// The paper's preferred scheme, `schedule(dynamic, 1)`.
    #[inline]
    pub const fn dynamic_cyclic() -> Self {
        Schedule::DynamicChunked(1)
    }

    /// Locality-aware work stealing with the default chunk size.
    #[inline]
    pub const fn work_stealing() -> Self {
        Schedule::WorkStealing {
            chunk: Self::DEFAULT_STEAL_CHUNK,
        }
    }

    /// A short stable label used by benchmark reports.
    pub fn label(&self) -> String {
        match self {
            Schedule::Block => "block".to_owned(),
            Schedule::StaticCyclic => "static-cyclic".to_owned(),
            Schedule::DynamicChunked(1) => "dynamic-cyclic".to_owned(),
            Schedule::DynamicChunked(c) => format!("dynamic({c})"),
            Schedule::Guided(c) => format!("guided({c})"),
            Schedule::WorkStealing { chunk } => format!("work-stealing({chunk})"),
        }
    }
}

/// Parses the CLI spelling of a schedule: `block`, `static-cyclic`,
/// `dynamic-cyclic`, `dynamic:<chunk>`, `guided:<min-chunk>`, or
/// `work-stealing[:<chunk>]`.
///
/// ```
/// use parapsp_parfor::Schedule;
/// assert_eq!("dynamic:4".parse(), Ok(Schedule::DynamicChunked(4)));
/// assert_eq!("work-stealing".parse(), Ok(Schedule::work_stealing()));
/// ```
impl std::str::FromStr for Schedule {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        const POSSIBLE: &[&str] = &[
            "block",
            "static-cyclic",
            "dynamic-cyclic",
            "dynamic:<chunk>",
            "guided:<min-chunk>",
            "work-stealing[:<chunk>]",
        ];
        let (name, param) = crate::spec::split_spec(raw);
        let parse_param = |default: Option<usize>| {
            crate::spec::parse_positive_param("schedule", name, param, default)
        };
        match name {
            "block" | "static-cyclic" | "dynamic-cyclic" if param.is_some() => {
                Err(crate::spec::reject_param("schedule", name))
            }
            "block" => Ok(Schedule::Block),
            "static-cyclic" => Ok(Schedule::StaticCyclic),
            "dynamic-cyclic" => Ok(Schedule::dynamic_cyclic()),
            "dynamic" => Ok(Schedule::DynamicChunked(parse_param(None)?)),
            "guided" => Ok(Schedule::Guided(parse_param(None)?)),
            "work-stealing" => Ok(Schedule::WorkStealing {
                chunk: parse_param(Some(Schedule::DEFAULT_STEAL_CHUNK))?,
            }),
            _ => Err(crate::spec::reject_unknown("schedule", raw, POSSIBLE)),
        }
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::dynamic_cyclic()
    }
}

/// Splits `0..n` into `parts` contiguous blocks and returns the half-open
/// range assigned to block `idx`.
///
/// The first `n % parts` blocks receive one extra element, matching the
/// usual OpenMP static partitioning, so block sizes differ by at most one.
///
/// ```
/// use parapsp_parfor::block_range;
/// assert_eq!(block_range(10, 4, 0), 0..3);
/// assert_eq!(block_range(10, 4, 1), 3..6);
/// assert_eq!(block_range(10, 4, 2), 6..8);
/// assert_eq!(block_range(10, 4, 3), 8..10);
/// ```
#[inline]
pub fn block_range(n: usize, parts: usize, idx: usize) -> std::ops::Range<usize> {
    assert!(parts > 0, "cannot split a range into zero parts");
    assert!(
        idx < parts,
        "block index {idx} out of range for {parts} parts"
    );
    let base = n / parts;
    let extra = n % parts;
    let start = idx * base + idx.min(extra);
    let len = base + usize::from(idx < extra);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_covers_everything_exactly_once() {
        for n in [0usize, 1, 2, 7, 16, 100, 101] {
            for parts in 1..=9usize {
                let mut seen = vec![false; n];
                let mut prev_end = 0;
                for idx in 0..parts {
                    let r = block_range(n, parts, idx);
                    assert_eq!(r.start, prev_end, "blocks must be contiguous");
                    prev_end = r.end;
                    for i in r {
                        assert!(!seen[i]);
                        seen[i] = true;
                    }
                }
                assert_eq!(prev_end, n);
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        for n in [1usize, 5, 10, 97] {
            for parts in 1..=8usize {
                let sizes: Vec<usize> =
                    (0..parts).map(|i| block_range(n, parts, i).len()).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} parts={parts} sizes={sizes:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        let _ = block_range(10, 0, 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Schedule::Block.label(), "block");
        assert_eq!(Schedule::StaticCyclic.label(), "static-cyclic");
        assert_eq!(Schedule::dynamic_cyclic().label(), "dynamic-cyclic");
        assert_eq!(Schedule::DynamicChunked(8).label(), "dynamic(8)");
        assert_eq!(Schedule::work_stealing().label(), "work-stealing(8)");
        assert_eq!(
            Schedule::WorkStealing { chunk: 2 }.label(),
            "work-stealing(2)"
        );
    }

    #[test]
    fn from_str_accepts_every_cli_spelling() {
        assert_eq!("block".parse(), Ok(Schedule::Block));
        assert_eq!("static-cyclic".parse(), Ok(Schedule::StaticCyclic));
        assert_eq!("dynamic-cyclic".parse(), Ok(Schedule::DynamicChunked(1)));
        assert_eq!("dynamic:4".parse(), Ok(Schedule::DynamicChunked(4)));
        assert_eq!("guided:2".parse(), Ok(Schedule::Guided(2)));
        assert_eq!("work-stealing".parse(), Ok(Schedule::work_stealing()));
        assert_eq!(
            "work-stealing:16".parse(),
            Ok(Schedule::WorkStealing { chunk: 16 })
        );
    }

    #[test]
    fn from_str_rejects_malformed_specs() {
        for bad in [
            "warp",
            "dynamic",
            "dynamic:0",
            "dynamic:lots",
            "guided",
            "work-stealing:0",
            "block:4",
            "dynamic-cyclic:2",
            "",
        ] {
            let err = bad.parse::<Schedule>().unwrap_err();
            assert!(err.contains("schedule"), "{bad}: {err}");
        }
    }

    #[test]
    fn default_is_dynamic_cyclic() {
        assert_eq!(Schedule::default(), Schedule::DynamicChunked(1));
    }
}
