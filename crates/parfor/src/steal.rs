//! Chase–Lev-style work-stealing deques over contiguous index ranges.
//!
//! Each pool worker owns one [`StealDeque`] holding *range descriptors*
//! (half-open `[lo, hi)` intervals packed into a single `u64`), not
//! individual indices. The owner pushes and pops at the *bottom*; thieves
//! steal one descriptor from the *top* with a CAS. Because descriptors
//! are ranges, a single-descriptor steal migrates a whole contiguous
//! stripe of iterations at once — bulk transfer without the unsound
//! multi-slot top CAS (which can race with the owner's non-CAS pop and
//! execute indices twice).
//!
//! The protocol is the fence-based Chase–Lev deque of Lê, Pop, Cohen &
//! Nardelli ("Correct and Efficient Work-Stealing for Weak Memory
//! Models", PPoPP'13), restricted to a fixed ring: seeding pushes a
//! bounded number of blocks (see [`StealDeque::seed_blocks`]) and
//! execution never grows the deque (each pop pushes back at most one
//! remainder), so a 64-slot ring can never overflow. See DESIGN.md §10
//! for the full memory-ordering argument.

use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// Ring capacity per deque. [`StealDeque::seed_blocks`] pushes at most
/// [`MAX_SEED_STRIPES`] descriptors and execution never grows the deque
/// (each pop pushes back at most one remainder), so 64 slots can never
/// overflow.
const RING_CAPACITY: usize = 64;

/// Upper bound on seeded descriptors per worker. The slack below the
/// ring size covers the at most one in-flight remainder a worker ever
/// re-pushes (own pops and stolen ranges alike), with margin.
const MAX_SEED_STRIPES: usize = RING_CAPACITY - 8;

/// Per-worker count of *front* blocks — the first tier of the two-tier
/// seeding (see [`StealDeque::seed_blocks`]). Front blocks are exactly
/// `chunk` wide, so across workers the first
/// `threads × FRONT_STRIPES × chunk` indices execute in the same global
/// order `DynamicChunked(chunk)` produces — which is where order
/// matters: under degree ordering those are the hub rows every later
/// row's reuse feeds on.
const FRONT_STRIPES: usize = 16;

/// Stripe width for the *tail* tier: at least the claim granularity
/// `chunk` (so a stripe is worth splitting), and wide enough that one
/// worker's share of the tail fits its remaining ring slots.
pub(crate) fn tail_stripe_size(tail: usize, threads: usize, chunk: usize) -> usize {
    let budget = threads.max(1) * (MAX_SEED_STRIPES - FRONT_STRIPES);
    chunk.max(tail.div_ceil(budget)).max(1)
}

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; the victim may still
    /// have work, so the scan should retry.
    Retry,
    /// Stole the top range descriptor.
    Success(u32, u32),
}

#[inline]
const fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
const fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// A fixed-capacity Chase–Lev deque of packed index ranges.
///
/// Owner-side operations ([`push`](Self::push), [`pop`](Self::pop),
/// [`seed`](Self::seed)) must only be called from one thread at a time —
/// the worker that owns the deque during a parallel region, or the
/// caller thread before the region starts. [`steal`](Self::steal) may be
/// called concurrently from any number of other threads.
pub(crate) struct StealDeque {
    /// Next slot a thief will take. Monotonically increasing.
    top: CachePadded<AtomicI64>,
    /// One past the owner's last pushed slot.
    bottom: CachePadded<AtomicI64>,
    /// Ring of packed `(lo, hi)` descriptors; slot `i` lives at
    /// `ring[i & (RING_CAPACITY - 1)]`.
    ring: Box<[AtomicU64; RING_CAPACITY]>,
}

impl StealDeque {
    pub(crate) fn new() -> Self {
        StealDeque {
            top: CachePadded::new(AtomicI64::new(0)),
            bottom: CachePadded::new(AtomicI64::new(0)),
            ring: Box::new([const { AtomicU64::new(0) }; RING_CAPACITY]),
        }
    }

    #[inline]
    fn slot(&self, index: i64) -> &AtomicU64 {
        &self.ring[(index as u64 as usize) & (RING_CAPACITY - 1)]
    }

    /// Owner-side push of the range `[lo, hi)` at the bottom.
    ///
    /// Panics on overflow — statically impossible for deques used as
    /// documented (seed once, then pop-one/push-back-at-most-one), and a
    /// silent wrap would lose and duplicate iterations.
    pub(crate) fn push(&self, lo: u32, hi: u32) {
        debug_assert!(lo < hi, "empty ranges are never enqueued");
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        assert!(
            b - t < RING_CAPACITY as i64,
            "steal deque overflow: occupancy invariant violated"
        );
        self.slot(b).store(pack(lo, hi), Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-side pop from the bottom (LIFO). Returns `None` when the
    /// deque is empty or a thief won the race for the last descriptor.
    pub(crate) fn pop(&self) -> Option<(u32, u32)> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Order the `bottom` store before the `top` load: a concurrent
        // thief must either see our reservation of slot `b` or we must
        // see its advanced `top` (and fall into the CAS arm below).
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let v = self.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last descriptor: race thieves for it via `top`.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then(|| unpack(v));
            }
            Some(unpack(v))
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief-side steal of the top descriptor.
    ///
    /// The slot is read *before* the claiming CAS; the read is only
    /// trusted when the CAS succeeds. The owner cannot have overwritten
    /// the slot in between, because a slot is reused only after `top`
    /// has advanced past it (capacity check in [`push`](Self::push)) —
    /// and if `top` advanced, the CAS fails and the stale value is
    /// discarded.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let v = self.slot(t).load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                let (lo, hi) = unpack(v);
                return Steal::Success(lo, hi);
            }
            return Steal::Retry;
        }
        Steal::Empty
    }

    /// Seeds the deque with `worker`'s share of the iteration space
    /// `0..n`, partitioned into contiguous *blocks* assigned cyclically
    /// (block `b` belongs to worker `b % threads`) in two tiers: the
    /// first `threads × FRONT_STRIPES` blocks are exactly `chunk` wide,
    /// the rest are [`tail_stripe_size`]-wide stripes. Blocks are pushed
    /// highest-first, so the owner pops its blocks in ascending index
    /// order and a thief's single steal takes the owner's
    /// *farthest-away* block — the work the owner would reach last.
    ///
    /// Each block is a contiguous run of the (degree-ordered) iteration
    /// space, so per-descriptor locality matches `DynamicChunked`'s,
    /// while the cyclic assignment keeps the workers' collective
    /// execution order tracking the global order — fine-grained over the
    /// order-critical hub front, coarse over the tail, where stealing
    /// (not placement) levels the imbalance. See DESIGN.md §10 for the
    /// measurement that rejected per-worker contiguous slabs.
    ///
    /// Owner-side operation: call before the parallel region starts (the
    /// region entry provides the necessary happens-before edge) or from
    /// the owning worker.
    pub(crate) fn seed_blocks(&self, n: u32, chunk: u32, worker: u32, threads: u32) {
        debug_assert!(chunk >= 1);
        debug_assert!(worker < threads);
        // Tier boundary and block counts, in u64 (intermediate products
        // can exceed u32 even though every index is below `n`).
        let front_len = (n as u64).min(threads as u64 * FRONT_STRIPES as u64 * chunk as u64);
        let front_blocks = front_len.div_ceil(chunk as u64);
        let tail = n as u64 - front_len;
        let stripe = tail_stripe_size(tail as usize, threads as usize, chunk as usize) as u64;
        let total = front_blocks + tail.div_ceil(stripe);
        if worker as u64 >= total {
            return;
        }
        let mine = (total - worker as u64).div_ceil(threads as u64);
        debug_assert!(
            (mine as usize) <= MAX_SEED_STRIPES,
            "seed occupancy bound violated"
        );
        for k in (0..mine).rev() {
            let b = worker as u64 + k * threads as u64;
            let (lo, hi) = if b < front_blocks {
                let lo = b * chunk as u64;
                (lo, front_len.min(lo + chunk as u64))
            } else {
                let lo = front_len + (b - front_blocks) * stripe;
                (lo, (n as u64).min(lo + stripe))
            };
            self.push(lo as u32, hi as u32);
        }
    }
}

/// Counters describing how a pool claimed loop chunks, accumulated
/// across parallel regions by [`ThreadPool`](crate::ThreadPool).
///
/// `pops` counts chunks a worker claimed from its own share of the work
/// (its own deque under [`Schedule::WorkStealing`](crate::Schedule), the
/// shared counter under `DynamicChunked`/`Guided`, the single inline
/// claim on a one-thread pool). `steals` counts chunks obtained by
/// stealing a range descriptor from another worker's deque, and
/// `failed_steals` counts steal CASes lost to a racing claimant. The
/// static `Block`/`StaticCyclic` schedules claim nothing at runtime and
/// leave all counters untouched.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Chunks claimed from the worker's own work share.
    pub pops: u64,
    /// Chunks obtained by stealing from another worker.
    pub steals: u64,
    /// Steal attempts that lost the claiming race.
    pub failed_steals: u64,
}

impl ScheduleStats {
    /// Total successful chunk claims (`pops + steals`).
    #[inline]
    pub fn claims(&self) -> u64 {
        self.pops + self.steals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn drain_owner(d: &StealDeque) -> Vec<(u32, u32)> {
        std::iter::from_fn(|| d.pop()).collect()
    }

    #[test]
    fn push_pop_is_lifo() {
        let d = StealDeque::new();
        d.push(0, 10);
        d.push(10, 20);
        d.push(20, 30);
        assert_eq!(drain_owner(&d), vec![(20, 30), (10, 20), (0, 10)]);
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_takes_the_oldest_range() {
        let d = StealDeque::new();
        d.push(0, 10);
        d.push(10, 20);
        assert_eq!(d.steal(), Steal::Success(0, 10));
        assert_eq!(d.pop(), Some((10, 20)));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn seeded_blocks_partition_the_space_exactly_once() {
        for (n, threads, chunk) in [
            (1usize, 1usize, 1u32),
            (7, 3, 1),
            (100, 4, 4),
            (256, 4, 1),
            (1023, 8, 16),
            (3000, 4, 8),
            (100_000, 8, 8),
        ] {
            let mut seen = vec![0u32; n];
            for w in 0..threads {
                let d = StealDeque::new();
                d.seed_blocks(n as u32, chunk, w as u32, threads as u32);
                let pieces = drain_owner(&d);
                assert!(pieces.len() <= MAX_SEED_STRIPES);
                // Owner pop order is ascending over contiguous blocks.
                let mut prev_hi = 0;
                for &(lo, hi) in &pieces {
                    assert!(lo >= prev_hi, "n={n} t={threads}: pops not ascending");
                    assert!(hi > lo && hi <= n as u32);
                    for i in lo..hi {
                        seen[i as usize] += 1;
                    }
                    prev_hi = hi;
                }
            }
            for (i, &c) in seen.iter().enumerate() {
                assert_eq!(c, 1, "index {i} (n={n} t={threads} chunk={chunk})");
            }
        }
    }

    #[test]
    fn front_tier_blocks_are_chunk_wide_and_dealt_cyclically() {
        // 4 workers, chunk 8: the first 4×16 blocks cover [0, 512) in
        // 8-wide blocks, block b on worker b % 4 — the same global order
        // DynamicChunked(8) produces over the order-critical front.
        let threads = 4u32;
        let chunk = 8u32;
        for w in 0..threads {
            let d = StealDeque::new();
            d.seed_blocks(100_000, chunk, w, threads);
            let pieces = drain_owner(&d);
            for (k, &(lo, hi)) in pieces.iter().take(FRONT_STRIPES).enumerate() {
                assert_eq!(lo, (w + k as u32 * threads) * chunk);
                assert_eq!(hi, lo + chunk);
            }
            // Tail blocks are wider: imbalance there is levelled by
            // stealing, not placement.
            assert!(pieces[FRONT_STRIPES].1 - pieces[FRONT_STRIPES].0 > chunk);
        }
    }

    #[test]
    fn seeding_an_empty_or_out_of_range_share_pushes_nothing() {
        let d = StealDeque::new();
        d.seed_blocks(0, 4, 0, 2);
        assert_eq!(d.pop(), None);
        // Worker 3 of 4 with only 2 blocks to go around: empty share.
        d.seed_blocks(8, 4, 3, 4);
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn seeding_bounds_occupancy_and_covers_huge_spaces() {
        // Worst cases: huge spaces with tiny chunks must fit the ring
        // while still partitioning 0..n exactly (checked by stitching
        // all workers' intervals together, not materializing n slots).
        for (n, threads, chunk) in [
            (u32::MAX, 1u32, 1u32),
            (4_000_000_000, 2, 1),
            (3000, 16, 1),
            (5, 4, 64),
        ] {
            let mut intervals: Vec<(u32, u32)> = Vec::new();
            for w in 0..threads {
                let d = StealDeque::new();
                d.seed_blocks(n, chunk, w, threads);
                let pieces = drain_owner(&d);
                assert!(
                    pieces.len() <= MAX_SEED_STRIPES,
                    "n={n} t={threads}: {} blocks",
                    pieces.len()
                );
                intervals.extend(pieces);
            }
            intervals.sort_unstable();
            let mut pos = 0u32;
            for (lo, hi) in intervals {
                assert_eq!(lo, pos, "gap or overlap at {lo} (n={n} t={threads})");
                assert!(hi > lo);
                pos = hi;
            }
            assert_eq!(pos, n);
        }
    }

    /// Owner pops while three thieves steal; every index in the seeded
    /// block must be claimed exactly once across all four threads.
    #[test]
    fn concurrent_pop_and_steal_claims_each_index_once() {
        const N: u32 = 100_000;
        for trial in 0..8u32 {
            let d = Arc::new(StealDeque::new());
            d.seed_blocks(N, 1 + (trial % 5), 0, 1);
            let claims: Arc<Vec<AtomicUsize>> =
                Arc::new((0..N).map(|_| AtomicUsize::new(0)).collect());
            let mut thieves = Vec::new();
            for _ in 0..3 {
                let d = Arc::clone(&d);
                let claims = Arc::clone(&claims);
                thieves.push(std::thread::spawn(move || loop {
                    match d.steal() {
                        Steal::Success(lo, hi) => {
                            for i in lo..hi {
                                claims[i as usize].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => break,
                    }
                }));
            }
            while let Some((lo, hi)) = d.pop() {
                for i in lo..hi {
                    claims[i as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
            for t in thieves {
                t.join().unwrap();
            }
            for (i, c) in claims.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} (trial {trial})");
            }
        }
    }

    #[test]
    fn stats_claims_sums_pops_and_steals() {
        let s = ScheduleStats {
            pops: 3,
            steals: 4,
            failed_steals: 9,
        };
        assert_eq!(s.claims(), 7);
        assert_eq!(ScheduleStats::default().claims(), 0);
    }
}
