//! Shared helpers: order validation and parallel degree-bounds reduction.

use parapsp_parfor::{PerThread, Schedule, ThreadPool};

/// True when `order` contains each of `0..n` exactly once.
pub fn is_permutation(order: &[u32], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in order {
        let Some(slot) = seen.get_mut(v as usize) else {
            return false;
        };
        if *slot {
            return false;
        }
        *slot = true;
    }
    true
}

/// Panics with a diagnostic when `order` is not a permutation of `0..n`.
pub fn assert_is_permutation(order: &[u32], n: usize) {
    assert!(
        is_permutation(order, n),
        "order of length {} is not a permutation of 0..{n}",
        order.len()
    );
}

/// True when visiting `order` never increases the degree.
pub fn is_descending_by_degree(degrees: &[u32], order: &[u32]) -> bool {
    order
        .windows(2)
        .all(|w| degrees[w[0] as usize] >= degrees[w[1] as usize])
}

/// Finds `(min, max)` of `keys` using a per-thread parallel reduction —
/// line 1 of Algorithms 5–7 ("Find max/min degree of the given graph").
///
/// Returns `None` for an empty slice.
pub fn par_degree_bounds(keys: &[u32], pool: &ThreadPool) -> Option<(u32, u32)> {
    if keys.is_empty() {
        return None;
    }
    let locals: PerThread<Option<(u32, u32)>> = PerThread::new(pool.num_threads());
    pool.parallel_for(keys.len(), Schedule::Block, |tid, i| {
        let k = keys[i];
        // SAFETY: each pool thread updates only its own slot.
        let slot = unsafe { locals.get_mut(tid) };
        *slot = match *slot {
            None => Some((k, k)),
            Some((lo, hi)) => Some((lo.min(k), hi.max(k))),
        };
    });
    locals
        .into_inner()
        .into_iter()
        .flatten()
        .reduce(|(alo, ahi), (blo, bhi)| (alo.min(blo), ahi.max(bhi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_checks() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 1], 3)); // too short
        assert!(!is_permutation(&[0, 0, 1], 3)); // duplicate
        assert!(!is_permutation(&[0, 1, 3], 3)); // out of range
        assert!(is_permutation(&[], 0));
    }

    #[test]
    fn descending_check() {
        let degrees = [5, 1, 3];
        assert!(is_descending_by_degree(&degrees, &[0, 2, 1]));
        assert!(!is_descending_by_degree(&degrees, &[1, 0, 2]));
        assert!(is_descending_by_degree(&degrees, &[0])); // single
        assert!(is_descending_by_degree(&degrees, &[])); // empty
    }

    #[test]
    fn parallel_bounds_match_sequential() {
        let keys: Vec<u32> = (0..10_000u32).map(|i| i.wrapping_mul(2654435761) % 977).collect();
        let seq_min = *keys.iter().min().unwrap();
        let seq_max = *keys.iter().max().unwrap();
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            assert_eq!(par_degree_bounds(&keys, &pool), Some((seq_min, seq_max)));
        }
    }

    #[test]
    fn bounds_of_empty_and_singleton() {
        let pool = ThreadPool::new(2);
        assert_eq!(par_degree_bounds(&[], &pool), None);
        assert_eq!(par_degree_bounds(&[7], &pool), Some((7, 7)));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn assert_helper_panics() {
        assert_is_permutation(&[0, 0], 2);
    }
}
