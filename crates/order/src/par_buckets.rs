//! ParBuckets — Alg. 5: parallel *approximate* bucketing with a fixed
//! number of degree ranges and one lock per bucket.
//!
//! The paper's first attempt: vertices are scattered in parallel into 101
//! coarse buckets (Eq. 1), then concatenated from the highest range down.
//! Two problems the later procedures fix, both reproduced faithfully here:
//!
//! 1. the order is only approximate *within* a bucket, which slows the
//!    downstream APSP sweep (paper Fig. 5), and
//! 2. scale-free graphs put almost every vertex into the lowest buckets,
//!    so lock contention *grows* with thread count (paper Table 1 shows
//!    the ordering time rising from 10 µs at 1 thread to 166 µs at 16).

use parking_lot::Mutex;

use parapsp_parfor::{Schedule, ThreadPool};

use crate::common::par_degree_bounds;

/// Bucket index of a degree per the paper's Eq. (1):
/// `floor(ranges * (deg - min) / (max - min))`, yielding `0..=ranges`.
///
/// When every vertex has the same degree (`max == min`) everything maps to
/// bucket 0.
#[inline]
pub fn bucket_index(degree: u32, min: u32, max: u32, ranges: usize) -> usize {
    if max == min {
        return 0;
    }
    ((ranges as u64 * (degree - min) as u64) / (max - min) as u64) as usize
}

/// Runs the ParBuckets procedure, returning an approximately descending
/// order (exactly descending *across* buckets; arbitrary within).
///
/// The per-bucket insertion order depends on thread interleaving, so two
/// runs with more than one thread may legally differ — exactly like the
/// OpenMP original.
pub fn par_buckets(degrees: &[u32], ranges: usize, pool: &ThreadPool) -> Vec<u32> {
    assert!(ranges > 0, "ParBuckets needs at least one degree range");
    let n = degrees.len();
    if n == 0 {
        return Vec::new();
    }
    let (min, max) = par_degree_bounds(degrees, pool).expect("non-empty");

    // One lock-protected list per bucket (Alg. 5 line 2).
    let buckets: Vec<Mutex<Vec<u32>>> = (0..=ranges).map(|_| Mutex::new(Vec::new())).collect();

    // Alg. 5 lines 3–9: parallel scatter under per-bucket locks. The paper
    // uses the OpenMP default schedule (block partitioning).
    pool.parallel_for(n, Schedule::Block, |_tid, i| {
        let bin = bucket_index(degrees[i], min, max, ranges);
        buckets[bin].lock().push(i as u32);
    });

    // Alg. 5 lines 10–16: sequential concatenation from high range to low.
    let mut order = Vec::with_capacity(n);
    for bucket in buckets.iter().rev() {
        order.extend_from_slice(&bucket.lock());
    }
    order
}

/// True when `order` never moves to a strictly higher bucket — the
/// correctness guarantee ParBuckets actually offers.
pub fn is_bucket_descending(degrees: &[u32], order: &[u32], ranges: usize) -> bool {
    let Some((min, max)) = crate::common::par_degree_bounds(degrees, &ThreadPool::new(1)) else {
        return true;
    };
    order.windows(2).all(|w| {
        bucket_index(degrees[w[0] as usize], min, max, ranges)
            >= bucket_index(degrees[w[1] as usize], min, max, ranges)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::assert_is_permutation;

    #[test]
    fn formula_matches_paper_examples() {
        // 100 ranges over degrees 0..=1000: degree d lands in bucket d/10.
        assert_eq!(bucket_index(0, 0, 1000, 100), 0);
        assert_eq!(bucket_index(1000, 0, 1000, 100), 100);
        assert_eq!(bucket_index(505, 0, 1000, 100), 50);
        // Uniform degrees: single bucket.
        assert_eq!(bucket_index(7, 7, 7, 100), 0);
    }

    #[test]
    fn formula_never_exceeds_ranges() {
        for deg in 0..=97u32 {
            let b = bucket_index(deg, 0, 97, 100);
            assert!(b <= 100, "degree {deg} -> bucket {b}");
        }
    }

    #[test]
    fn produces_bucket_descending_permutation() {
        let degrees: Vec<u32> = (0..5000u32).map(|i| i.wrapping_mul(2654435761) % 321).collect();
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let order = par_buckets(&degrees, 100, &pool);
            assert_is_permutation(&order, degrees.len());
            assert!(is_bucket_descending(&degrees, &order, 100));
        }
    }

    #[test]
    fn single_thread_is_deterministic_and_blockwise_stable() {
        let degrees: Vec<u32> = (0..100u32).map(|i| i % 7).collect();
        let pool = ThreadPool::new(1);
        let a = par_buckets(&degrees, 100, &pool);
        let b = par_buckets(&degrees, 100, &pool);
        assert_eq!(a, b);
    }

    #[test]
    fn more_ranges_refine_the_order() {
        // With ranges >= max degree and min == 0, buckets are exact.
        let degrees: Vec<u32> = (0..800u32).map(|i| (i * 13) % 50).collect();
        let pool = ThreadPool::new(3);
        let order = par_buckets(&degrees, 1000, &pool);
        assert!(crate::common::is_descending_by_degree(&degrees, &order));
    }

    #[test]
    fn uniform_degrees_collapse_to_one_bucket() {
        let degrees = vec![4u32; 64];
        let pool = ThreadPool::new(2);
        let order = par_buckets(&degrees, 100, &pool);
        assert_is_permutation(&order, 64);
    }

    #[test]
    fn empty_input() {
        let pool = ThreadPool::new(2);
        assert!(par_buckets(&[], 100, &pool).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one degree range")]
    fn zero_ranges_rejected() {
        let pool = ThreadPool::new(1);
        let _ = par_buckets(&[1, 2], 0, &pool);
    }
}
