//! The paper's original O(n²) ordering step (Alg. 3, lines 6–12).
//!
//! This is the exchange-style selection sort Peng et al. used and that
//! ParAlg2 inherits. Its loop-carried dependency (`order[i]` must be final
//! before iteration `i + 1` starts) is *why* the paper had to design the
//! bucket-based procedures — it cannot be parallelized as written (§3.2).
//! It is kept verbatim so that Table 1 and Figures 8–9 can be reproduced.

/// Sorts vertex ids by descending degree using the paper's partial
/// selection sort: only the first `ceil(ratio * n)` positions are
/// guaranteed to hold the overall top-degree vertices in exact order;
/// with `ratio = 1.0` the whole array is exactly sorted.
///
/// The swap-based inner loop is intentionally identical to Alg. 3: for each
/// position `i`, every later element with a larger degree is swapped in as
/// soon as it is seen.
///
/// # Panics
///
/// Panics when `ratio` is not in `(0.0, 1.0]` (the paper requires
/// `0.0 < r <= 1.0`).
pub fn partial_selection_sort(degrees: &[u32], ratio: f64) -> Vec<u32> {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "selection-sort ratio {ratio} outside (0, 1]"
    );
    let n = degrees.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let prefix = ((ratio * n as f64).ceil() as usize).min(n);
    for i in 0..prefix {
        for j in (i + 1)..n {
            if degrees[order[j] as usize] > degrees[order[i] as usize] {
                order.swap(i, j);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{assert_is_permutation, is_descending_by_degree};

    #[test]
    fn full_ratio_sorts_exactly() {
        let degrees = vec![4, 9, 1, 9, 0, 3, 7];
        let order = partial_selection_sort(&degrees, 1.0);
        assert_is_permutation(&order, degrees.len());
        assert!(is_descending_by_degree(&degrees, &order));
    }

    #[test]
    fn prefix_holds_global_top_elements() {
        let degrees: Vec<u32> = (0..100u32).map(|i| (i * 37) % 101).collect();
        let order = partial_selection_sort(&degrees, 0.2);
        assert_is_permutation(&order, degrees.len());
        // First 20 positions are the 20 largest degrees, in order.
        let mut sorted = degrees.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for i in 0..20 {
            assert_eq!(degrees[order[i] as usize], sorted[i], "position {i}");
        }
    }

    #[test]
    fn handles_ties_and_tiny_inputs() {
        assert_eq!(partial_selection_sort(&[], 1.0), Vec::<u32>::new());
        assert_eq!(partial_selection_sort(&[5], 1.0), vec![0]);
        let order = partial_selection_sort(&[2, 2, 2], 1.0);
        assert_is_permutation(&order, 3);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_ratio_rejected() {
        let _ = partial_selection_sort(&[1, 2], 0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn ratio_above_one_rejected() {
        let _ = partial_selection_sort(&[1, 2], 1.5);
    }

    #[test]
    fn matches_std_sort_on_random_input() {
        let degrees: Vec<u32> = (0..500u32).map(|i| i.wrapping_mul(2654435761) % 64).collect();
        let order = partial_selection_sort(&degrees, 1.0);
        let got: Vec<u32> = order.iter().map(|&v| degrees[v as usize]).collect();
        let mut want = degrees.clone();
        want.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(got, want);
    }
}
