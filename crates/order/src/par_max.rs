//! ParMax — Alg. 6: exact parallel bucket ordering with `max + 1` buckets
//! and a degree threshold that routes the contended low-degree tail to a
//! sequential pass.
//!
//! Using one bucket per distinct degree removes ParBuckets' approximation
//! (and the Eq. 1 computation). The scale-free degree distribution then
//! concentrates nearly all insertions in the few lowest buckets, so those
//! are inserted *sequentially* (no lock traffic) while the rare
//! high-degree vertices — above `threshold × max` — are inserted in
//! parallel under per-bucket locks. An `added` bitmap lets the sequential
//! pass skip vertices already placed by the parallel pass (paper §4.2).

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use parapsp_parfor::{Schedule, ThreadPool};

use crate::common::par_degree_bounds;

/// Runs the ParMax procedure, returning the exact descending degree order.
///
/// `threshold` is the fraction of the maximum degree above which vertices
/// are inserted in parallel (the paper uses 0.01). The result is always an
/// exact descending order; within a degree, the sequential tail is stable
/// by vertex id while the parallel head may interleave (as in the OpenMP
/// original).
pub fn par_max(degrees: &[u32], threshold: f64, pool: &ThreadPool) -> Vec<u32> {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "ParMax threshold {threshold} outside [0, 1]"
    );
    let n = degrees.len();
    if n == 0 {
        return Vec::new();
    }
    let (_min, max) = par_degree_bounds(degrees, pool).expect("non-empty");

    // Alg. 6 line 2: one bucket per distinct degree, with locks.
    let mut buckets: Vec<Mutex<Vec<u32>>> =
        (0..=max as usize).map(|_| Mutex::new(Vec::new())).collect();
    let added: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let cut = max as f64 * threshold;

    // Alg. 6 lines 3–11: parallel insertion of high-degree vertices.
    pool.parallel_for(n, Schedule::Block, |_tid, i| {
        let deg = degrees[i];
        if deg as f64 >= cut {
            buckets[deg as usize].lock().push(i as u32);
            // Only this iteration's thread writes `added[i]`; Relaxed is
            // enough because the sequential pass starts after the region's
            // barrier.
            added[i].store(true, Ordering::Relaxed);
        }
    });

    // Alg. 6 lines 12–16: sequential insertion of the remaining (low
    // degree, heavily populated) vertices — no lock contention by design.
    for (i, &deg) in degrees.iter().enumerate() {
        if !added[i].load(Ordering::Relaxed) {
            buckets[deg as usize].get_mut().push(i as u32);
        }
    }
    let buckets = buckets; // freeze for the read-only merge

    // Alg. 6 lines 17–23: concatenate from max degree down to 0.
    let mut order = Vec::with_capacity(n);
    for bucket in buckets.iter().rev() {
        order.extend_from_slice(&bucket.lock());
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{assert_is_permutation, is_descending_by_degree};
    use crate::seq_bucket::seq_bucket_sort;

    fn scale_free_like(n: u32) -> Vec<u32> {
        // A few hubs, many leaves — the distribution ParMax targets.
        (0..n)
            .map(|i| if i % 97 == 0 { 500 + i % 400 } else { i % 6 })
            .collect()
    }

    #[test]
    fn exact_descending_for_all_thread_counts() {
        let degrees = scale_free_like(4000);
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let order = par_max(&degrees, 0.01, &pool);
            assert_is_permutation(&order, degrees.len());
            assert!(is_descending_by_degree(&degrees, &order));
        }
    }

    #[test]
    fn degree_multiset_matches_reference_sort() {
        let degrees = scale_free_like(2500);
        let pool = ThreadPool::new(4);
        let got: Vec<u32> = par_max(&degrees, 0.01, &pool)
            .iter()
            .map(|&v| degrees[v as usize])
            .collect();
        let want: Vec<u32> = seq_bucket_sort(&degrees)
            .iter()
            .map(|&v| degrees[v as usize])
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_thread_matches_stable_reference_exactly() {
        // With one thread both passes are sequential and stable, so the
        // permutation itself must equal the counting-sort reference.
        let degrees = scale_free_like(1000);
        let pool = ThreadPool::new(1);
        assert_eq!(par_max(&degrees, 0.01, &pool), seq_bucket_sort(&degrees));
    }

    #[test]
    fn threshold_extremes() {
        let degrees = scale_free_like(500);
        let pool = ThreadPool::new(3);
        // threshold 0: every vertex goes through the parallel pass.
        let all_par = par_max(&degrees, 0.0, &pool);
        assert!(is_descending_by_degree(&degrees, &all_par));
        // threshold 1: only max-degree vertices in parallel.
        let all_seq = par_max(&degrees, 1.0, &pool);
        assert!(is_descending_by_degree(&degrees, &all_seq));
    }

    #[test]
    fn uniform_and_tiny_inputs() {
        let pool = ThreadPool::new(2);
        assert!(par_max(&[], 0.01, &pool).is_empty());
        assert_eq!(par_max(&[9], 0.01, &pool), vec![0]);
        let order = par_max(&[3, 3, 3, 3], 0.01, &pool);
        assert_is_permutation(&order, 4);
    }

    #[test]
    fn zero_degree_graph() {
        // max = 0 means the cut is 0 and *every* vertex satisfies
        // `deg >= cut`, taking the parallel path; order is still valid.
        let degrees = vec![0u32; 100];
        let pool = ThreadPool::new(4);
        let order = par_max(&degrees, 0.01, &pool);
        assert_is_permutation(&order, 100);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_threshold_rejected() {
        let pool = ThreadPool::new(1);
        let _ = par_max(&[1], 2.0, &pool);
    }
}
