//! Sequential exact bucket (counting) sort, O(n).
//!
//! The observation that unlocks the whole of §4 of the paper: degrees are
//! bounded by `n`, so a counting sort replaces the O(n²) selection sort.
//! This sequential version is the reference the parallel procedures are
//! validated against; it is **stable** (ascending vertex id within equal
//! degree), which MultiLists reproduces exactly.

/// Returns vertex ids sorted by descending degree, stable by id.
pub fn seq_bucket_sort(degrees: &[u32]) -> Vec<u32> {
    let n = degrees.len();
    if n == 0 {
        return Vec::new();
    }
    let max = *degrees.iter().max().expect("non-empty") as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max + 1];
    for (v, &d) in degrees.iter().enumerate() {
        buckets[d as usize].push(v as u32);
    }
    let mut order = Vec::with_capacity(n);
    for bucket in buckets.iter().rev() {
        order.extend_from_slice(bucket);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{assert_is_permutation, is_descending_by_degree};

    #[test]
    fn sorts_descending_and_stable() {
        let degrees = vec![2, 5, 2, 0, 5, 3];
        let order = seq_bucket_sort(&degrees);
        assert_is_permutation(&order, degrees.len());
        assert!(is_descending_by_degree(&degrees, &order));
        // Stability: id 1 before id 4 (both degree 5); id 0 before id 2.
        assert_eq!(order, vec![1, 4, 5, 0, 2, 3]);
    }

    #[test]
    fn empty_and_uniform() {
        assert!(seq_bucket_sort(&[]).is_empty());
        assert_eq!(seq_bucket_sort(&[0, 0, 0]), vec![0, 1, 2]);
    }

    #[test]
    fn agrees_with_stable_std_sort() {
        let degrees: Vec<u32> = (0..2000u32).map(|i| i.wrapping_mul(2654435761) % 97).collect();
        let order = seq_bucket_sort(&degrees);
        let mut want: Vec<u32> = (0..degrees.len() as u32).collect();
        want.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
        assert_eq!(order, want, "stable sort results must match exactly");
    }
}
