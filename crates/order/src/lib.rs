//! Degree-ordering procedures from the ParAPSP paper (§2.2, §4).
//!
//! Peng et al.'s optimized APSP visits source vertices in **descending
//! degree order** so that hub rows are computed early and re-used by every
//! later modified-Dijkstra run. The ordering step itself then becomes the
//! parallel bottleneck; this crate implements the full progression of
//! procedures the paper walks through:
//!
//! | Procedure | Paper | Complexity | Exact order? | Parallel? |
//! |---|---|---|---|---|
//! | [`selection::partial_selection_sort`] | Alg. 3 lines 6–12 | O(r·n²) | yes (for r = 1) | no (loop-carried dependency) |
//! | [`seq_bucket::seq_bucket_sort`] | §4 intro | O(n) | yes | no |
//! | [`par_buckets::par_buckets`] | Alg. 5 | O(n) | **approximate** (101 coarse buckets) | yes, lock per bucket |
//! | [`par_max::par_max`] | Alg. 6 | O(n) | yes | partially (1 %-of-max threshold) |
//! | [`multi_lists::multi_lists`] | Alg. 7 | O(n) | yes | yes, lock-free (per-thread lists) |
//!
//! [`OrderingProcedure`] selects one of these by value, which is how the
//! APSP driver and the benchmark harness sweep them.
//!
//! The MultiLists engine is also exposed as a **general-purpose parallel
//! sort for bounded integer keys** in [`sort`], as the paper suggests
//! ("can be used for general sorting purposes").

#![warn(missing_docs)]

pub mod common;
pub mod multi_lists;
pub mod par_buckets;
pub mod par_max;
pub mod quality;
pub mod radix;
pub mod selection;
pub mod seq_bucket;
pub mod sort;

use parapsp_parfor::ThreadPool;

/// Which ordering procedure to run before the SSSP sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OrderingProcedure {
    /// No ordering: sources are visited as `0..n` (Peng's *basic* algorithm
    /// / ParAlg1).
    Identity,
    /// The paper's original O(n²) selection-style sort (ParAlg2), sorting
    /// the first `ratio * n` positions exactly. `ratio = 1.0` reproduces the
    /// full descending order used in the evaluation.
    SelectionSort {
        /// Fraction of positions to sort (Alg. 3's `r`, `0 < r <= 1`).
        ratio: f64,
    },
    /// Sequential exact bucket (counting) sort, O(n).
    SeqBucket,
    /// Parallel approximate bucketing with a fixed number of degree ranges
    /// and one lock per bucket (Alg. 5). The paper uses 100 ranges (101
    /// buckets) and also tried 1000.
    ParBuckets {
        /// Number of degree ranges (buckets = ranges + 1).
        ranges: usize,
    },
    /// Exact parallel bucket sort with `max_degree + 1` buckets; vertices
    /// above `threshold × max` insert in parallel under locks, the long
    /// low-degree tail inserts sequentially (Alg. 6, threshold 0.01).
    ParMax {
        /// Fraction of the max degree above which insertion is parallel.
        threshold: f64,
    },
    /// Lock-free exact ordering with per-thread bucket lists and a
    /// two-phase merge (Alg. 7) — the procedure inside **ParAPSP**.
    MultiLists {
        /// Fraction of the degree range merged in parallel (Alg. 7's
        /// `parRatio`, 0.1 in the paper).
        par_ratio: f64,
    },
}

impl OrderingProcedure {
    /// Alg. 3's full selection sort (`r = 1.0`), as used by ParAlg2.
    pub fn selection() -> Self {
        OrderingProcedure::SelectionSort { ratio: 1.0 }
    }

    /// Alg. 5 with the paper's 100 degree ranges.
    pub fn par_buckets() -> Self {
        OrderingProcedure::ParBuckets { ranges: 100 }
    }

    /// Alg. 6 with the paper's 1 % threshold.
    pub fn par_max() -> Self {
        OrderingProcedure::ParMax { threshold: 0.01 }
    }

    /// Alg. 7 with the paper's `parRatio = 0.1`.
    pub fn multi_lists() -> Self {
        OrderingProcedure::MultiLists { par_ratio: 0.1 }
    }

    /// Stable label for benchmark reports.
    pub fn label(&self) -> String {
        match self {
            OrderingProcedure::Identity => "identity".into(),
            OrderingProcedure::SelectionSort { ratio } => {
                if (*ratio - 1.0).abs() < f64::EPSILON {
                    "selection".into()
                } else {
                    format!("selection(r={ratio})")
                }
            }
            OrderingProcedure::SeqBucket => "seq-bucket".into(),
            OrderingProcedure::ParBuckets { ranges } => format!("par-buckets({ranges})"),
            OrderingProcedure::ParMax { threshold } => format!("par-max({threshold})"),
            OrderingProcedure::MultiLists { par_ratio } => format!("multi-lists({par_ratio})"),
        }
    }

    /// True when the procedure is guaranteed to produce an exact descending
    /// degree order (ParBuckets is only approximate).
    pub fn is_exact(&self) -> bool {
        !matches!(self, OrderingProcedure::ParBuckets { .. })
    }

    /// Runs the procedure over a degree array, returning the visit order
    /// (a permutation of `0..degrees.len()`).
    pub fn compute(&self, degrees: &[u32], pool: &ThreadPool) -> Vec<u32> {
        match *self {
            OrderingProcedure::Identity => (0..degrees.len() as u32).collect(),
            OrderingProcedure::SelectionSort { ratio } => {
                selection::partial_selection_sort(degrees, ratio)
            }
            OrderingProcedure::SeqBucket => seq_bucket::seq_bucket_sort(degrees),
            OrderingProcedure::ParBuckets { ranges } => {
                par_buckets::par_buckets(degrees, ranges, pool)
            }
            OrderingProcedure::ParMax { threshold } => par_max::par_max(degrees, threshold, pool),
            OrderingProcedure::MultiLists { par_ratio } => {
                multi_lists::multi_lists(degrees, par_ratio, pool)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{assert_is_permutation, is_descending_by_degree};

    #[test]
    fn dispatch_produces_valid_orders_for_every_procedure() {
        let degrees: Vec<u32> = vec![3, 0, 7, 7, 1, 2, 9, 0, 4, 4, 4, 1];
        let pool = ThreadPool::new(3);
        for proc in [
            OrderingProcedure::Identity,
            OrderingProcedure::selection(),
            OrderingProcedure::SeqBucket,
            OrderingProcedure::par_buckets(),
            OrderingProcedure::par_max(),
            OrderingProcedure::multi_lists(),
        ] {
            let order = proc.compute(&degrees, &pool);
            assert_is_permutation(&order, degrees.len());
            if proc.is_exact() && proc != OrderingProcedure::Identity {
                assert!(
                    is_descending_by_degree(&degrees, &order),
                    "{} not descending: {order:?}",
                    proc.label()
                );
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            OrderingProcedure::Identity,
            OrderingProcedure::selection(),
            OrderingProcedure::SeqBucket,
            OrderingProcedure::par_buckets(),
            OrderingProcedure::par_max(),
            OrderingProcedure::multi_lists(),
        ]
        .iter()
        .map(|p| p.label())
        .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
