//! Parallel LSD radix sort for *unbounded* `u32` keys.
//!
//! MultiLists (Alg. 7) is O(n + max_key) and needs keys "in limited
//! ranges" (paper §4.3). This module removes that restriction with the
//! same architectural idea applied per digit: each thread scatters its
//! block into **private** counters (no locks), a positional prefix scan
//! assigns every `(digit, thread)` bucket a disjoint output range, and the
//! scatter writes in parallel — MultiLists' two-phase structure, iterated
//! over four 8-bit digits. Stable, O(n) per pass.

use parapsp_parfor::{ParSlice, PerThread, Schedule, ThreadPool};

pub use crate::multi_lists::SortDirection;

const RADIX: usize = 256;
const PASSES: u32 = 4;

/// Sorts the indices of `keys` (stable) using parallel LSD radix sort.
/// Works for the full `u32` range; auxiliary space O(n + threads·256).
pub fn par_radix_sort_indices(
    keys: &[u32],
    direction: SortDirection,
    pool: &ThreadPool,
) -> Vec<u32> {
    let n = keys.len();
    if n <= 1 {
        return (0..n as u32).collect();
    }
    let threads = pool.num_threads();
    let mut current: Vec<u32> = (0..n as u32).collect();
    let mut next: Vec<u32> = vec![0; n];

    for pass in 0..PASSES {
        let shift = pass * 8;
        let digit_of = |index: u32| ((keys[index as usize] >> shift) as usize) & (RADIX - 1);

        // Phase 1: private per-thread digit histograms over block ranges.
        let histograms: PerThread<Vec<u32>> =
            PerThread::from_fn(threads, |_| vec![0u32; RADIX]);
        {
            let current_ref = &current;
            pool.parallel_for(n, Schedule::Block, |tid, i| {
                // SAFETY: each pool thread owns its histogram slot.
                let hist = unsafe { histograms.get_mut(tid) };
                hist[digit_of(current_ref[i])] += 1;
            });
        }
        let histograms: Vec<Vec<u32>> = histograms.into_inner();

        // Early exit: a pass where every key shares one digit is a no-op.
        let mut digit_totals = [0u64; RADIX];
        for hist in &histograms {
            for (total, &count) in digit_totals.iter_mut().zip(hist) {
                *total += count as u64;
            }
        }
        if digit_totals.contains(&(n as u64)) {
            continue;
        }

        // Positional scan: offsets per (digit, thread), digit order set by
        // the sort direction. Visiting threads in id order keeps stability
        // (blocks are in index order).
        let mut offsets = vec![vec![0u32; RADIX]; threads];
        let mut position = 0u32;
        let digit_sequence: Box<dyn Iterator<Item = usize>> = match direction {
            SortDirection::Ascending => Box::new(0..RADIX),
            SortDirection::Descending => Box::new((0..RADIX).rev()),
        };
        for digit in digit_sequence {
            for tid in 0..threads {
                offsets[tid][digit] = position;
                position += histograms[tid][digit];
            }
        }
        debug_assert_eq!(position as usize, n);

        // Phase 2: parallel scatter into disjoint ranges.
        {
            let view = ParSlice::new(&mut next[..]);
            let current_ref = &current;
            let offsets_ref = &offsets;
            pool.run(|tid| {
                let mut cursor = offsets_ref[tid].clone();
                for i in parapsp_parfor::block_range(n, threads, tid) {
                    let index = current_ref[i];
                    let digit = digit_of(index);
                    // SAFETY: the scan gives every (digit, thread) bucket a
                    // disjoint range, owned by this thread.
                    unsafe { view.write(cursor[digit] as usize, index) };
                    cursor[digit] += 1;
                }
            });
        }
        std::mem::swap(&mut current, &mut next);
    }

    // Descending LSD with reversed digit order yields descending stable by
    // key but we processed digits low→high with reversed buckets each
    // pass, which composes to a correct descending stable order (mirror of
    // the ascending argument).
    current
}

/// Sorts items by an arbitrary `u32` key using the parallel radix engine.
pub fn par_radix_sorted_by_key<T: Clone, F>(
    items: &[T],
    key: F,
    direction: SortDirection,
    pool: &ThreadPool,
) -> Vec<T>
where
    F: Fn(&T) -> u32,
{
    let keys: Vec<u32> = items.iter().map(&key).collect();
    par_radix_sort_indices(&keys, direction, pool)
        .into_iter()
        .map(|i| items[i as usize].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_ascending(keys: &[u32]) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
        idx.sort_by_key(|&i| keys[i as usize]);
        idx
    }

    fn reference_descending(keys: &[u32]) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(keys[i as usize]));
        idx
    }

    #[test]
    fn matches_std_stable_sort_on_full_range_keys() {
        // Keys spanning the whole u32 range — beyond MultiLists' reach.
        let keys: Vec<u32> = (0..30_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761).rotate_left(11))
            .collect();
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            assert_eq!(
                par_radix_sort_indices(&keys, SortDirection::Ascending, &pool),
                reference_ascending(&keys),
                "{threads} threads ascending"
            );
            assert_eq!(
                par_radix_sort_indices(&keys, SortDirection::Descending, &pool),
                reference_descending(&keys),
                "{threads} threads descending"
            );
        }
    }

    #[test]
    fn stability_with_many_duplicates() {
        let keys: Vec<u32> = (0..5_000u32).map(|i| i % 7).collect();
        let pool = ThreadPool::new(4);
        assert_eq!(
            par_radix_sort_indices(&keys, SortDirection::Ascending, &pool),
            reference_ascending(&keys)
        );
        assert_eq!(
            par_radix_sort_indices(&keys, SortDirection::Descending, &pool),
            reference_descending(&keys)
        );
    }

    #[test]
    fn uniform_keys_short_circuit() {
        let keys = vec![42u32; 1_000];
        let pool = ThreadPool::new(3);
        // All passes skip; output is the identity (stable).
        assert_eq!(
            par_radix_sort_indices(&keys, SortDirection::Ascending, &pool),
            (0..1_000u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tiny_inputs() {
        let pool = ThreadPool::new(2);
        assert!(par_radix_sort_indices(&[], SortDirection::Ascending, &pool).is_empty());
        assert_eq!(
            par_radix_sort_indices(&[9], SortDirection::Descending, &pool),
            vec![0]
        );
        assert_eq!(
            par_radix_sort_indices(&[2, 1], SortDirection::Ascending, &pool),
            vec![1, 0]
        );
    }

    #[test]
    fn item_level_api() {
        let pool = ThreadPool::new(2);
        let items = vec![("b", 4_000_000_000u32), ("a", 17), ("c", 90_000)];
        let sorted = par_radix_sorted_by_key(&items, |it| it.1, SortDirection::Ascending, &pool);
        let names: Vec<&str> = sorted.iter().map(|it| it.0).collect();
        assert_eq!(names, vec!["a", "c", "b"]);
    }

    #[test]
    fn agrees_with_multilists_on_bounded_keys() {
        let keys: Vec<u32> = (0..8_000u32).map(|i| i.wrapping_mul(131) % 512).collect();
        let pool = ThreadPool::new(4);
        let radix = par_radix_sort_indices(&keys, SortDirection::Descending, &pool);
        let multilists =
            crate::multi_lists::multi_lists_by_key(&keys, 0.1, &pool, SortDirection::Descending);
        assert_eq!(radix, multilists);
    }
}
