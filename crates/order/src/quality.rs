//! Order-quality metrics: *how far* from the exact descending degree order
//! is an approximate one?
//!
//! The paper observes (§4.2, Fig. 5) that ParBuckets' approximate order
//! slows the downstream SSSP sweep and that "it is critical to find the
//! precise descending order". These metrics make that statement
//! quantitative, and the ablation benches report them next to SSSP times:
//!
//! * [`inversions`] — the number of vertex pairs visited in the wrong
//!   relative degree order (0 for an exact order, O(n²) worst case),
//!   counted in O(n log n) with a Fenwick tree;
//! * [`normalized_kendall_distance`] — inversions scaled to `[0, 1]`;
//! * [`hub_displacement`] — how far, on average, the top-k hubs sit from
//!   their exact positions (hubs arriving late is precisely what starves
//!   the row-reuse optimization).

/// Fenwick (binary indexed) tree over `n` counters.
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut index: usize) {
        index += 1;
        while index < self.tree.len() {
            self.tree[index] += 1;
            index += index & index.wrapping_neg();
        }
    }

    /// Sum of counters at positions `0..=index`.
    fn prefix(&self, mut index: usize) -> u64 {
        index += 1;
        let mut sum = 0;
        while index > 0 {
            sum += self.tree[index];
            index -= index & index.wrapping_neg();
        }
        sum
    }
}

/// Number of *strict degree inversions* in `order`: pairs `(i, j)` with
/// `i < j` (i.e. `order[i]` visited first) but
/// `degrees[order[i]] < degrees[order[j]]` — the later vertex should have
/// come first. Ties count as in order. O(n log d_max).
pub fn inversions(degrees: &[u32], order: &[u32]) -> u64 {
    let max = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut seen_smaller = Fenwick::new(max + 1);
    let mut count = 0u64;
    // Walk the order backwards; for each vertex count how many *already
    // seen* (i.e. visited later) vertices have a strictly larger degree.
    for &v in order.iter().rev() {
        let d = degrees[v as usize] as usize;
        // seen with degree > d  ==  seen_total - seen with degree <= d
        let seen_total = seen_smaller.prefix(max);
        count += seen_total - seen_smaller.prefix(d);
        seen_smaller.add(d);
    }
    count
}

/// Inversions normalized by the pair count, in `[0, 1]`; 0 = exact
/// descending order, 1 = exactly ascending (for distinct degrees).
pub fn normalized_kendall_distance(degrees: &[u32], order: &[u32]) -> f64 {
    let n = order.len() as u64;
    if n < 2 {
        return 0.0;
    }
    inversions(degrees, order) as f64 / ((n * (n - 1)) / 2) as f64
}

/// Mean absolute displacement of the `k` highest-degree vertices from the
/// front of the order, in positions. For an exact descending order the
/// top-k hubs occupy (some permutation of) the first positions matching
/// their degree rank, giving ~0; an approximate order that buries hubs
/// scores high. Ties are handled by comparing against the best achievable
/// position for each degree value.
pub fn hub_displacement(degrees: &[u32], order: &[u32], k: usize) -> f64 {
    let n = order.len();
    if n == 0 || k == 0 {
        return 0.0;
    }
    let k = k.min(n);
    // position_of[v] = index of v in the order.
    let mut position_of = vec![0usize; n];
    for (pos, &v) in order.iter().enumerate() {
        position_of[v as usize] = pos;
    }
    // Exact order (stable) gives each degree value a *tie block* of legal
    // positions; any placement inside the block is as good as exact.
    let exact = crate::seq_bucket::seq_bucket_sort(degrees);
    let max_degree = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut block_start = vec![usize::MAX; max_degree + 1];
    let mut block_end = vec![0usize; max_degree + 1];
    for (pos, &v) in exact.iter().enumerate() {
        let d = degrees[v as usize] as usize;
        block_start[d] = block_start[d].min(pos);
        block_end[d] = block_end[d].max(pos);
    }
    let mut total = 0.0f64;
    for &v in exact.iter().take(k) {
        let d = degrees[v as usize] as usize;
        let actual = position_of[v as usize];
        total += if actual < block_start[d] {
            (block_start[d] - actual) as f64
        } else if actual > block_end[d] {
            (actual - block_end[d]) as f64
        } else {
            0.0
        };
    }
    total / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq_bucket::seq_bucket_sort;

    #[test]
    fn exact_order_has_zero_inversions() {
        let degrees: Vec<u32> = (0..500u32).map(|i| i.wrapping_mul(2654435761) % 97).collect();
        let order = seq_bucket_sort(&degrees);
        assert_eq!(inversions(&degrees, &order), 0);
        assert_eq!(normalized_kendall_distance(&degrees, &order), 0.0);
    }

    #[test]
    fn reversed_order_has_maximal_inversions() {
        // Distinct degrees, ascending order = every pair inverted.
        let degrees: Vec<u32> = (0..100u32).collect();
        let ascending: Vec<u32> = (0..100u32).collect(); // degree asc
        assert_eq!(inversions(&degrees, &ascending), 100 * 99 / 2);
        assert!((normalized_kendall_distance(&degrees, &ascending) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_swap_counts_once() {
        let degrees = vec![5u32, 4, 3, 2, 1];
        let mut order = vec![0u32, 1, 2, 3, 4]; // exact descending
        order.swap(1, 2); // one adjacent inversion
        assert_eq!(inversions(&degrees, &order), 1);
    }

    #[test]
    fn ties_do_not_count_as_inversions() {
        let degrees = vec![3u32, 3, 3];
        for order in [[0u32, 1, 2], [2, 1, 0], [1, 0, 2]] {
            assert_eq!(inversions(&degrees, &order), 0);
        }
    }

    #[test]
    fn matches_quadratic_reference_on_random_orders() {
        let degrees: Vec<u32> = (0..200u32).map(|i| i.wrapping_mul(97) % 23).collect();
        // A deterministic scramble.
        let mut order: Vec<u32> = (0..200u32).collect();
        for i in 0..order.len() {
            let j = (i * 131 + 17) % order.len();
            order.swap(i, j);
        }
        let mut reference = 0u64;
        for i in 0..order.len() {
            for j in i + 1..order.len() {
                if degrees[order[i] as usize] < degrees[order[j] as usize] {
                    reference += 1;
                }
            }
        }
        assert_eq!(inversions(&degrees, &order), reference);
    }

    #[test]
    fn hub_displacement_zero_for_exact_orders() {
        let degrees: Vec<u32> = (0..300u32).map(|i| i.wrapping_mul(31) % 50).collect();
        let order = seq_bucket_sort(&degrees);
        assert!(hub_displacement(&degrees, &order, 10) < 1e-12);
    }

    #[test]
    fn hub_displacement_detects_buried_hubs() {
        // One huge hub placed at the very end of the order.
        let mut degrees = vec![1u32; 100];
        degrees[7] = 99;
        let mut order: Vec<u32> = (0..100u32).filter(|&v| v != 7).collect();
        order.push(7);
        let d = hub_displacement(&degrees, &order, 1);
        assert!((d - 99.0).abs() < 1e-12, "displacement {d}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(inversions(&[], &[]), 0);
        assert_eq!(normalized_kendall_distance(&[5], &[0]), 0.0);
        assert_eq!(hub_displacement(&[], &[], 5), 0.0);
        assert_eq!(hub_displacement(&[1], &[0], 0), 0.0);
    }
}
