//! General-purpose parallel sorting for bounded integer keys.
//!
//! The paper notes that "the proposed parallel MultiLists ordering
//! algorithm can be used in general parallel sorting problem when keys are
//! in limited ranges" (§4.3). This module is that API: a stable, O(n +
//! max_key) parallel sort of arbitrary items by a `u32` key.

use parapsp_parfor::ThreadPool;

pub use crate::multi_lists::SortDirection;
use crate::multi_lists::multi_lists_by_key;

/// Returns the indices of `keys` in sorted order (stable MultiLists sort).
///
/// ```
/// use parapsp_order::sort::{sort_indices, SortDirection};
/// use parapsp_parfor::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let keys = [30u32, 10, 20];
/// assert_eq!(sort_indices(&keys, SortDirection::Ascending, &pool), vec![1, 2, 0]);
/// ```
pub fn sort_indices(keys: &[u32], direction: SortDirection, pool: &ThreadPool) -> Vec<u32> {
    multi_lists_by_key(keys, 0.1, pool, direction)
}

/// Sorts a slice of items by an integer key, returning a new vector.
/// Stable: equal-key items keep their input order.
///
/// The key range should be bounded (auxiliary space is
/// O(threads × max_key)); this is the counting-sort trade-off the paper's
/// procedure inherits.
pub fn sorted_by_bounded_key<T: Clone, F>(
    items: &[T],
    key: F,
    direction: SortDirection,
    pool: &ThreadPool,
) -> Vec<T>
where
    F: Fn(&T) -> u32,
{
    let keys: Vec<u32> = items.iter().map(&key).collect();
    sort_indices(&keys, direction, pool)
        .into_iter()
        .map(|i| items[i as usize].clone())
        .collect()
}

/// Sorts a vector of items in place (by permutation) by an integer key.
pub fn sort_in_place_by_bounded_key<T, F>(
    items: &mut Vec<T>,
    key: F,
    direction: SortDirection,
    pool: &ThreadPool,
) where
    F: Fn(&T) -> u32,
{
    let keys: Vec<u32> = items.iter().map(&key).collect();
    let order = sort_indices(&keys, direction, pool);
    let mut taken: Vec<Option<T>> = items.drain(..).map(Some).collect();
    items.extend(
        order
            .into_iter()
            .map(|i| taken[i as usize].take().expect("permutation visits once")),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_structs_by_key_stably() {
        let pool = ThreadPool::new(4);
        let items: Vec<(&str, u32)> = vec![
            ("carol", 35),
            ("alice", 20),
            ("bob", 35),
            ("dave", 20),
            ("eve", 99),
        ];
        let by_age = sorted_by_bounded_key(&items, |p| p.1, SortDirection::Ascending, &pool);
        let names: Vec<&str> = by_age.iter().map(|p| p.0).collect();
        assert_eq!(names, vec!["alice", "dave", "carol", "bob", "eve"]);

        let desc = sorted_by_bounded_key(&items, |p| p.1, SortDirection::Descending, &pool);
        let names: Vec<&str> = desc.iter().map(|p| p.0).collect();
        assert_eq!(names, vec!["eve", "carol", "bob", "alice", "dave"]);
    }

    #[test]
    fn matches_std_stable_sort_on_large_random_input() {
        let pool = ThreadPool::new(4);
        let keys: Vec<u32> = (0..50_000u32).map(|i| i.wrapping_mul(2654435761) % 4093).collect();
        let ours = sort_indices(&keys, SortDirection::Ascending, &pool);
        let mut std_sorted: Vec<u32> = (0..keys.len() as u32).collect();
        std_sorted.sort_by_key(|&i| keys[i as usize]);
        assert_eq!(ours, std_sorted);
    }

    #[test]
    fn in_place_variant_with_non_clone_items() {
        let pool = ThreadPool::new(2);
        let mut items: Vec<Box<u32>> = vec![Box::new(5), Box::new(1), Box::new(3)];
        sort_in_place_by_bounded_key(&mut items, |b| **b, SortDirection::Ascending, &pool);
        assert_eq!(items.iter().map(|b| **b).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn empty_input() {
        let pool = ThreadPool::new(2);
        let empty: Vec<u32> = Vec::new();
        assert!(sorted_by_bounded_key(&empty, |&x| x, SortDirection::Ascending, &pool).is_empty());
    }
}
