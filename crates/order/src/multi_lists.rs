//! MultiLists — Alg. 7: exact, lock-free parallel ordering with one list of
//! buckets **per thread**, the procedure inside ParAPSP.
//!
//! Phase 1 (lines 3–8): each thread scatters its block of vertices into its
//! *own* bucket list — no locks, no contention, no false sharing (the
//! per-thread lists are cache-line padded).
//!
//! Between the phases (line 9) the starting position of every
//! `(thread, degree)` bucket in the global `order` array is computed by a
//! prefix scan over bucket sizes.
//!
//! Phase 2 (lines 10–20): buckets are copied to their slots. The low-degree
//! ranges — which hold ~99 % of the vertices of a scale-free graph — are
//! copied in parallel; the broad high-degree range is copied sequentially
//! to avoid false sharing from many threads writing small scattered slots
//! (paper §4.3).
//!
//! The global order is **deterministic and stable**: degree descending,
//! and within a degree ascending by vertex id (because phase 1 uses block
//! partitioning and the merge visits threads in id order). It therefore
//! equals [`seq_bucket_sort`](crate::seq_bucket::seq_bucket_sort) exactly,
//! for every thread count — a property the tests pin down.

use parapsp_parfor::{ParSlice, PerThread, Schedule, ThreadPool};

use crate::common::par_degree_bounds;

/// Runs the MultiLists procedure, returning the exact descending degree
/// order. `par_ratio` is the fraction of the degree range merged in
/// parallel during phase 2 (0.1 in the paper).
pub fn multi_lists(degrees: &[u32], par_ratio: f64, pool: &ThreadPool) -> Vec<u32> {
    multi_lists_by_key(degrees, par_ratio, pool, SortDirection::Descending)
}

/// Merge direction for the generic engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDirection {
    /// Largest key first (the APSP ordering).
    Descending,
    /// Smallest key first.
    Ascending,
}

/// The MultiLists engine, generic over sort direction: sorts the *indices*
/// of `keys` by key value in O(n + max_key) time and O(threads × max_key)
/// auxiliary space. Stable (index-ascending within equal keys).
///
/// This is the "general sorting purposes" form the paper advertises; see
/// [`crate::sort`] for the item-level API.
pub fn multi_lists_by_key(
    keys: &[u32],
    par_ratio: f64,
    pool: &ThreadPool,
    direction: SortDirection,
) -> Vec<u32> {
    assert!(
        (0.0..=1.0).contains(&par_ratio),
        "MultiLists parRatio {par_ratio} outside [0, 1]"
    );
    let n = keys.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = pool.num_threads();
    let (_min, max) = par_degree_bounds(keys, pool).expect("non-empty");
    let buckets = max as usize + 1;

    // Phase 1 (Alg. 7 lines 3–8): per-thread bucket lists, no locks.
    let locals: PerThread<Vec<Vec<u32>>> =
        PerThread::from_fn(threads, |_| vec![Vec::new(); buckets]);
    pool.parallel_for(n, Schedule::Block, |tid, i| {
        // SAFETY: each pool thread mutates only its own slot.
        let lists = unsafe { locals.get_mut(tid) };
        lists[keys[i] as usize].push(i as u32);
    });
    let lists: Vec<Vec<Vec<u32>>> = locals.into_inner();

    // Line 9: compute the global starting position of every
    // `(thread, degree)` bucket. Iterating degrees in output order and
    // threads in id order is what makes the result stable.
    let mut order_pos = vec![vec![0usize; buckets]; threads];
    let mut pos = 0usize;
    let degree_sequence: Box<dyn Iterator<Item = usize>> = match direction {
        SortDirection::Descending => Box::new((0..buckets).rev()),
        SortDirection::Ascending => Box::new(0..buckets),
    };
    for deg in degree_sequence {
        for tid in 0..threads {
            order_pos[tid][deg] = pos;
            pos += lists[tid][deg].len();
        }
    }
    debug_assert_eq!(pos, n);

    // Phase 2 (lines 10–20): copy buckets into the global array. Low
    // degrees (dense, ~99 % of vertices) in parallel; the broad sparse
    // high-degree range sequentially to avoid false sharing.
    let mut order = vec![0u32; n];
    let cut = (max as f64 * par_ratio).floor() as u32;
    {
        let view = ParSlice::new(&mut order);
        let lists_ref = &lists;
        let pos_ref = &order_pos;
        pool.run(|tid| {
            for deg in 0..=cut.min(max) as usize {
                let base = pos_ref[tid][deg];
                for (offset, &v) in lists_ref[tid][deg].iter().enumerate() {
                    // SAFETY: `order_pos` assigns every (thread, degree)
                    // bucket a disjoint range of the output array, and this
                    // thread is the only writer of its buckets' ranges.
                    unsafe { view.write(base + offset, v) };
                }
            }
        });
        // Line 20: high-degree vertices appended by the caller thread.
        for deg in (cut as usize + 1)..buckets {
            for tid in 0..threads {
                let base = pos_ref[tid][deg];
                for (offset, &v) in lists_ref[tid][deg].iter().enumerate() {
                    // SAFETY: same disjointness argument; the parallel
                    // region above has completed.
                    unsafe { view.write(base + offset, v) };
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{assert_is_permutation, is_descending_by_degree};
    use crate::seq_bucket::seq_bucket_sort;

    fn scale_free_like(n: u32) -> Vec<u32> {
        (0..n)
            .map(|i| if i % 101 == 0 { 300 + (i * 7) % 700 } else { i % 5 })
            .collect()
    }

    #[test]
    fn equals_stable_reference_for_every_thread_count() {
        let degrees = scale_free_like(5000);
        let reference = seq_bucket_sort(&degrees);
        for threads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(threads);
            let order = multi_lists(&degrees, 0.1, &pool);
            assert_eq!(order, reference, "threads = {threads}");
        }
    }

    #[test]
    fn par_ratio_extremes_do_not_change_the_result() {
        let degrees = scale_free_like(3000);
        let pool = ThreadPool::new(4);
        let reference = seq_bucket_sort(&degrees);
        for ratio in [0.0, 0.01, 0.5, 1.0] {
            assert_eq!(multi_lists(&degrees, ratio, &pool), reference, "ratio {ratio}");
        }
    }

    #[test]
    fn descending_and_permutation_on_random_keys() {
        let degrees: Vec<u32> = (0..10_000u32).map(|i| i.wrapping_mul(2654435761) % 1009).collect();
        let pool = ThreadPool::new(4);
        let order = multi_lists(&degrees, 0.1, &pool);
        assert_is_permutation(&order, degrees.len());
        assert!(is_descending_by_degree(&degrees, &order));
    }

    #[test]
    fn ascending_direction() {
        let keys: Vec<u32> = vec![9, 1, 4, 4, 0, 7];
        let pool = ThreadPool::new(3);
        let order = multi_lists_by_key(&keys, 0.1, &pool, SortDirection::Ascending);
        assert_eq!(order, vec![4, 1, 2, 3, 5, 0]);
    }

    #[test]
    fn tiny_inputs() {
        let pool = ThreadPool::new(4);
        assert!(multi_lists(&[], 0.1, &pool).is_empty());
        assert_eq!(multi_lists(&[3], 0.1, &pool), vec![0]);
        assert_eq!(multi_lists(&[0, 0], 0.1, &pool), vec![0, 1]);
    }

    #[test]
    fn all_equal_keys_are_stable_by_id() {
        let keys = vec![5u32; 257];
        let pool = ThreadPool::new(4);
        let order = multi_lists(&keys, 0.1, &pool);
        assert_eq!(order, (0..257u32).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_elements() {
        let keys = vec![2u32, 1, 3];
        let pool = ThreadPool::new(8);
        assert_eq!(multi_lists(&keys, 0.1, &pool), vec![2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_ratio_rejected() {
        let pool = ThreadPool::new(1);
        let _ = multi_lists(&[1], -0.5, &pool);
    }
}
