//! Quickstart: build a small weighted graph, run ParAPSP, inspect results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parapsp::core::{ApspEngine, RunConfig, Runner};
use parapsp::graph::{Direction, GraphBuilder, INF};

fn main() {
    // A small directed road network: vertices are intersections, weights
    // are minutes of travel.
    //
    //      (5)        (2)
    //   0 -----> 1 -----> 2
    //   |        ^        |
    //  (2)      (1)      (7)
    //   v        |        v
    //   3 -----> 4 -----> 5
    //      (4)        (3)
    let mut builder = GraphBuilder::new(6, Direction::Directed);
    for &(u, v, w) in &[
        (0, 1, 5),
        (1, 2, 2),
        (0, 3, 2),
        (4, 1, 1),
        (2, 5, 7),
        (3, 4, 4),
        (4, 5, 3),
    ] {
        builder.add_edge(u, v, w).expect("valid edge");
    }
    let graph = builder.build();

    // Run the paper's ParAPSP (MultiLists ordering + dynamic-cyclic
    // scheduling) on 4 threads: a `Runner` drives any engine under a
    // `RunConfig`.
    let out = Runner::new(RunConfig::par_apsp(4)).run(ApspEngine::new(), &graph);

    println!("algorithm: {}  threads: {}", out.algorithm, out.threads);
    println!(
        "ordering: {:?}  sssp: {:?}  total: {:?}",
        out.timings.ordering, out.timings.sssp, out.timings.total
    );
    println!(
        "relaxations: {}  row reuses: {}\n",
        out.counters.relaxations, out.counters.row_reuses
    );

    println!("all-pairs shortest distances (minutes):");
    print!("     ");
    for v in 0..6 {
        print!("{v:>4}");
    }
    println!();
    for u in 0..6u32 {
        print!("  {u}: ");
        for v in 0..6u32 {
            let d = out.dist.get(u, v);
            if d == INF {
                print!("   -");
            } else {
                print!("{d:>4}");
            }
        }
        println!();
    }

    // A couple of spot checks.
    assert_eq!(out.dist.get(0, 5), 9); // 0 -> 3 -> 4 -> 5 = 2 + 4 + 3
    assert_eq!(out.dist.get(0, 2), 7); // 0 -> 3 -> 4 -> 1 -> 2 = 2+4+1+2 = 9? no: 0->1->2 = 5+2 = 7
    assert_eq!(out.dist.get(5, 0), INF); // no way back
    println!(
        "\nfastest 0 -> 5 route takes {} minutes",
        out.dist.get(0, 5)
    );
}
