//! Domain example: the MultiLists ordering procedure as a **general-purpose
//! parallel sort** for bounded integer keys, as the paper suggests
//! ("the proposed parallel MultiLists ordering algorithm can be used in
//! general parallel sorting problem when keys are in limited ranges", §4.3).
//!
//! Sorts a synthetic web-server access log by HTTP status code and by
//! response-time bucket, comparing against the standard library sort.
//!
//! ```text
//! cargo run --release --example bounded_key_sort
//! ```

use std::time::Instant;

use parapsp::order::sort::{sort_in_place_by_bounded_key, sorted_by_bounded_key, SortDirection};
use parapsp::parfor::ThreadPool;

#[derive(Debug, Clone)]
struct LogEntry {
    request_id: u64,
    status: u16,
    latency_ms: u32,
}

fn synthesize(n: usize) -> Vec<LogEntry> {
    // Deterministic pseudo-random log (no RNG dependency needed here).
    (0..n as u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
            LogEntry {
                request_id: i,
                status: match h % 100 {
                    0..=79 => 200,
                    80..=89 => 304,
                    90..=95 => 404,
                    96..=98 => 500,
                    _ => 503,
                },
                latency_ms: (h % 2_000) as u32,
            }
        })
        .collect()
}

fn main() {
    let entries = synthesize(1_000_000);
    let pool = ThreadPool::new(4);

    // Sort by latency (keys bounded by 2000 ms) — MultiLists territory.
    let start = Instant::now();
    let by_latency =
        sorted_by_bounded_key(&entries, |e| e.latency_ms, SortDirection::Descending, &pool);
    let ours = start.elapsed();

    let start = Instant::now();
    let mut std_sorted = entries.clone();
    std_sorted.sort_by_key(|e| std::cmp::Reverse(e.latency_ms));
    let std_time = start.elapsed();

    println!("sorting {} log entries by latency:", entries.len());
    println!("  MultiLists (4 threads): {ours:?}");
    println!("  std stable sort:        {std_time:?}");
    assert_eq!(by_latency.len(), entries.len());
    // Both sorts are stable, so the results must be identical.
    assert!(by_latency
        .iter()
        .zip(&std_sorted)
        .all(|(a, b)| a.request_id == b.request_id));
    println!(
        "  slowest request: #{} at {} ms (status {})",
        by_latency[0].request_id, by_latency[0].latency_ms, by_latency[0].status
    );

    // Group by status code in place (tiny key range).
    let mut entries = entries;
    sort_in_place_by_bounded_key(
        &mut entries,
        |e| e.status as u32,
        SortDirection::Ascending,
        &pool,
    );
    println!("\nentries grouped by status code:");
    let mut i = 0;
    while i < entries.len() {
        let status = entries[i].status;
        let j = entries[i..].iter().take_while(|e| e.status == status).count();
        println!("  {status}: {j} requests");
        i += j;
    }
}
