//! Domain example: who are the most *influential* members of a social
//! network? — the paper's motivating use case (§1): complex-network
//! analysis on top of an all-pairs shortest-path solution.
//!
//! Generates a scale-free friendship network (the structure of Livemocha /
//! Flickr in the paper's Table 2), computes APSP with ParAPSP, then ranks
//! members by closeness and harmonic centrality and reports global
//! path-length statistics.
//!
//! ```text
//! cargo run --release --example social_influence
//! ```

use parapsp::analysis::{
    centrality::{closeness_centrality, harmonic_centrality, top_k, Normalization},
    paths::{distance_distribution, path_stats},
};
use parapsp::core::{ApspEngine, RunConfig, Runner};
use parapsp::graph::degree;
use parapsp::graph::generate::{barabasi_albert, WeightSpec};

fn main() {
    let n = 2_000;
    let graph = barabasi_albert(n, 4, WeightSpec::Unit, 2024).expect("generation");
    let degrees = degree::out_degrees(&graph);
    println!(
        "friendship network: {} members, {} friendships, max degree {}",
        graph.vertex_count(),
        graph.edge_count(),
        degrees.iter().max().unwrap()
    );

    let out = Runner::new(RunConfig::par_apsp(4)).run(ApspEngine::new(), &graph);
    println!(
        "APSP solved in {:?} ({} row reuses did the work of full searches)\n",
        out.timings.total, out.counters.row_reuses
    );

    // Global structure: the "small world" numbers.
    let stats = path_stats(&out.dist);
    println!("diameter: {} hops", stats.diameter);
    println!("radius:   {} hops", stats.radius);
    println!("average separation: {:.3} hops", stats.average_path_length);
    println!("connected pairs: {:.1}%\n", stats.connectivity() * 100.0);

    let hist = distance_distribution(&out.dist);
    println!("degrees of separation:");
    for (d, count) in hist.iter().enumerate().skip(1) {
        if *count > 0 {
            let share = *count as f64 / stats.reachable_pairs as f64 * 100.0;
            println!(
                "  {d} hops: {share:5.1}%  {}",
                "#".repeat((share / 2.0) as usize)
            );
        }
    }

    // Who is central?
    let closeness = closeness_centrality(&out.dist, Normalization::WassermanFaust);
    let harmonic = harmonic_centrality(&out.dist);
    println!("\ntop 5 by closeness centrality:");
    for v in top_k(&closeness, 5) {
        println!(
            "  member {v:4}  closeness {:.4}  degree {}",
            closeness[v as usize], degrees[v as usize]
        );
    }
    println!("top 5 by harmonic centrality:");
    for v in top_k(&harmonic, 5) {
        println!(
            "  member {v:4}  harmonic {:.4}  degree {}",
            harmonic[v as usize], degrees[v as usize]
        );
    }
}
