//! Domain example: the paper's **future work**, simulated — ParAPSP on a
//! distributed-memory cluster (§7: "we would like to extend the ParAPSP
//! algorithm on distributed-memory parallel environments so that we could
//! find APSP solutions for much larger graphs").
//!
//! Each simulated node owns 1/P of the distance rows (the memory win that
//! motivates going distributed) and shares only *hub* rows, trading
//! communication for the dynamic-programming reuse that makes Peng's
//! kernel fast. The sweep below shows that trade-off.
//!
//! ```text
//! cargo run --release --example distributed_cluster
//! ```

use parapsp::core::{RunConfig, Runner};
use parapsp::datasets::{find, Scale};
use parapsp::dist::{ClusterConfig, DistEngine};

fn main() {
    let graph = find("WordNet")
        .expect("registry")
        .generate(Scale::Vertices(1_200))
        .expect("generation");
    let n = graph.vertex_count();
    println!(
        "WordNet replica: {} vertices, {} edges",
        n,
        graph.edge_count()
    );
    println!(
        "full matrix: {:.1} MiB; per-node share at P=4: {:.1} MiB\n",
        (n * n * 4) as f64 / (1 << 20) as f64,
        (n * n * 4) as f64 / 4.0 / (1 << 20) as f64
    );

    println!(
        "{:>6} {:>14} {:>12} {:>14} {:>14} {:>10}",
        "nodes", "hub fraction", "elapsed", "broadcast KiB", "remote reuses", "exact?"
    );
    let mut reference = None;
    for nodes in [1usize, 2, 4] {
        for hub_fraction in [0.0, 0.02, 0.10] {
            let engine = DistEngine::new(ClusterConfig {
                nodes,
                hub_fraction,
                ..Default::default()
            });
            let out = Runner::new(RunConfig::new(1)).run(engine, &graph);
            let remote: u64 = out.node_stats.iter().map(|s| s.remote_reuses).sum();
            let exact = match &reference {
                None => {
                    reference = Some(out.dist.clone());
                    true
                }
                Some(r) => r.first_difference(&out.dist).is_none(),
            };
            println!(
                "{nodes:>6} {hub_fraction:>14} {:>12.2?} {:>14} {:>14} {:>10}",
                out.elapsed,
                out.total_broadcast_bytes() / 1024,
                remote,
                exact
            );
            assert!(exact, "distributed output diverged!");
        }
    }
    println!("\nevery configuration produced the identical exact matrix");
}
