//! Domain example: distance estimation on graphs **too large for the full
//! O(n²) matrix** — the regime the paper's future work targets (§7).
//!
//! Builds a scale-free network, indexes it with k hub landmarks (exact
//! rows only for the landmarks, O(k·n) memory via the subset-APSP engine),
//! and measures estimator quality against exact distances. Also contrasts
//! hub landmarks with degree-blind stride landmarks — the same "hubs carry
//! the shortest paths" insight that powers the paper's ordering
//! optimization.
//!
//! ```text
//! cargo run --release --example landmark_estimation
//! ```

use parapsp::analysis::landmarks::{LandmarkIndex, LandmarkStrategy};
use parapsp::core::baselines::apsp_dijkstra;
use parapsp::graph::generate::{barabasi_albert, WeightSpec};

fn main() {
    let n = 4_000;
    let graph = barabasi_albert(n, 4, WeightSpec::Unit, 7).expect("generation");
    println!(
        "network: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );
    println!(
        "full matrix would need {:.1} MiB; a 16-landmark index needs {:.2} MiB\n",
        (n * n * 4) as f64 / (1 << 20) as f64,
        (16 * n * 4) as f64 / (1 << 20) as f64
    );

    // Exact oracle for scoring (affordable at this demo size).
    let exact = apsp_dijkstra(&graph);

    println!(
        "{:<18} {:>4} {:>12} {:>12} {:>12}",
        "strategy", "k", "mean err", "exact pairs", "max overest"
    );
    for strategy in [LandmarkStrategy::HighestDegree, LandmarkStrategy::Stride] {
        for k in [4usize, 16, 64] {
            let index = LandmarkIndex::build(&graph, k, strategy, 4);
            let mut err_sum = 0.0f64;
            let mut exact_hits = 0usize;
            let mut max_over = 0u32;
            let mut count = 0usize;
            for u in (0..n as u32).step_by(53) {
                for v in (0..n as u32).step_by(61) {
                    if u == v {
                        continue;
                    }
                    let d = exact.get(u, v);
                    let est = index.estimate(u, v);
                    err_sum += (est - d) as f64 / d as f64;
                    if est == d {
                        exact_hits += 1;
                    }
                    max_over = max_over.max(est - d);
                    count += 1;
                }
            }
            println!(
                "{:<18} {k:>4} {:>11.1}% {:>11.1}% {:>12}",
                format!("{strategy:?}"),
                err_sum / count as f64 * 100.0,
                exact_hits as f64 / count as f64 * 100.0,
                max_over
            );
        }
    }
    println!("\nhub landmarks dominate: shortest paths in scale-free graphs route through hubs");
}
