//! Domain example: keeping the APSP solution fresh as a network **grows**
//! — exact incremental updates instead of O(n^2.4) recomputes.
//!
//! Simulates a growing collaboration network: start from a scale-free
//! core, then stream in new collaborations one at a time and maintain the
//! exact distance matrix with O(n²) parallel updates (see
//! `parapsp::core::dynamic`; the incremental direction of the dynamic-APSP
//! literature the paper cites as ref. 16).
//!
//! ```text
//! cargo run --release --example dynamic_network
//! ```

use std::time::Instant;

use parapsp::core::baselines::apsp_dijkstra;
use parapsp::core::dynamic::IncrementalApsp;
use parapsp::graph::generate::{barabasi_albert, WeightSpec};
use parapsp::graph::GraphBuilder;
use parapsp::parfor::ThreadPool;

fn main() {
    let n = 1_500;
    let base = barabasi_albert(n, 3, WeightSpec::Unit, 99).expect("generation");
    println!(
        "base network: {} members, {} collaborations",
        base.vertex_count(),
        base.edge_count()
    );

    let pool = ThreadPool::new(4);
    let t0 = Instant::now();
    let mut apsp = IncrementalApsp::new(&base, 4);
    println!("initial ParAPSP solve: {:?}\n", t0.elapsed());

    // Stream in 20 new collaborations (deterministic pseudo-random pairs).
    let new_edges: Vec<(u32, u32)> = (0..20u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (
                (h % n as u64) as u32,
                ((h >> 21) % n as u64) as u32,
            )
        })
        .filter(|&(u, v)| u != v)
        .collect();

    let mut update_total = std::time::Duration::ZERO;
    for &(u, v) in &new_edges {
        let t = Instant::now();
        let improved = apsp.insert_edge(u, v, 1, &pool);
        let dt = t.elapsed();
        update_total += dt;
        println!("new collaboration {u:>4} — {v:<4}  improved {improved:>6} pairs in {dt:?}");
    }

    // Verify against a from-scratch solve of the final graph.
    let mut builder = GraphBuilder::new(n, base.direction());
    for (u, v, w) in base.logical_edges() {
        builder.add_edge(u, v, w).unwrap();
    }
    for &(u, v) in &new_edges {
        builder.add_edge(u, v, 1).unwrap();
    }
    let t = Instant::now();
    let from_scratch = apsp_dijkstra(&builder.build());
    let recompute_time = t.elapsed();
    assert_eq!(from_scratch.first_difference(apsp.distances()), None);

    println!(
        "\n{} incremental updates: {:?} total ({:?} mean)",
        new_edges.len(),
        update_total,
        update_total / new_edges.len() as u32
    );
    println!("one from-scratch recompute: {recompute_time:?}");
    println!(
        "incremental maintenance is {:.0}x cheaper per edge — and the matrices match exactly",
        recompute_time.as_secs_f64() / (update_total.as_secs_f64() / new_edges.len() as f64)
    );
}
