//! Domain example: the full pipeline on a **real edge-list file** in SNAP
//! format — exactly how one would analyze the paper's original datasets
//! after downloading them from snap.stanford.edu.
//!
//! If no path is given, a bundled miniature collaboration network
//! (`data/sample-collab.txt`) is analyzed.
//!
//! ```text
//! cargo run --release --example snap_analysis [path/to/edges.txt]
//! ```

use parapsp::analysis::{
    centrality::{closeness_centrality, top_k, Normalization},
    paths::path_stats,
};
use parapsp::core::{ApspEngine, RunConfig, Runner};
use parapsp::graph::degree;
use parapsp::graph::io::{read_edge_list_file, ParseOptions};
use parapsp::graph::Direction;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "data/sample-collab.txt".to_string());
    let loaded = read_edge_list_file(&path, ParseOptions::snap(Direction::Undirected))
        .unwrap_or_else(|err| panic!("failed to load {path}: {err}"));
    let graph = &loaded.graph;
    println!(
        "{path}: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    let degrees = degree::out_degrees(graph);
    let stats = degree::degree_stats(&degrees).expect("non-empty graph");
    println!(
        "degrees: min {} / median {} / mean {:.1} / max {}",
        stats.min, stats.median, stats.mean, stats.max
    );

    // The O(n²) matrix is the limiting factor (the paper's sx-superuser run
    // needed 160 GB); refuse absurd inputs politely.
    let n = graph.vertex_count();
    let bytes = n * n * 4;
    if bytes > 4 << 30 {
        eprintln!(
            "refusing to allocate a {:.1} GiB distance matrix; use a smaller graph",
            bytes as f64 / (1u64 << 30) as f64
        );
        std::process::exit(1);
    }

    let out = Runner::new(RunConfig::par_apsp(4)).run(ApspEngine::new(), graph);
    println!("\nParAPSP finished in {:?}", out.timings.total);

    let ps = path_stats(&out.dist);
    println!(
        "diameter {} / radius {} / avg path {:.2} / connectivity {:.0}%",
        ps.diameter,
        ps.radius,
        ps.average_path_length,
        ps.connectivity() * 100.0
    );

    let closeness = closeness_centrality(&out.dist, Normalization::WassermanFaust);
    println!("\nmost central authors (by closeness):");
    for v in top_k(&closeness, 5) {
        println!(
            "  author {} (file id {})  closeness {:.4}  degree {}",
            v, loaded.original_ids[v as usize], closeness[v as usize], degrees[v as usize]
        );
    }
}
