//! Domain example: a miniature version of the paper's evaluation — sweep
//! thread counts over the algorithm family and print elapsed time and
//! speedup, like Figures 8 and 9.
//!
//! ```text
//! cargo run --release --example scaling_study [vertices]
//! ```
//!
//! Note: real speedup needs real cores; on a single-core machine the sweep
//! still demonstrates the *algorithmic* gaps (ParAlg2 and ParAPSP beating
//! ParAlg1, and ParAPSP eliminating ParAlg2's ordering overhead).

use parapsp::core::{ApspEngine, RunConfig, Runner};
use parapsp::datasets::{find, Scale};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500);
    let graph = find("WordNet")
        .expect("registry")
        .generate(Scale::Vertices(n))
        .expect("generation");
    println!(
        "WordNet replica: {} vertices, {} edges\n",
        graph.vertex_count(),
        graph.edge_count()
    );

    let threads = [1usize, 2, 4, 8];
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12} {:>9}",
        "algorithm", "threads", "ordering", "sssp", "total", "speedup"
    );
    for (label, make) in [
        ("ParAlg1", RunConfig::par_alg1 as fn(usize) -> RunConfig),
        ("ParAlg2", RunConfig::par_alg2),
        ("ParAPSP", RunConfig::par_apsp),
    ] {
        let mut t1 = None;
        for &t in &threads {
            let out = Runner::new(make(t)).run(ApspEngine::new(), &graph);
            let total = out.timings.total.as_secs_f64();
            let t1 = *t1.get_or_insert(total);
            println!(
                "{label:<10} {t:>8} {:>12.2?} {:>12.2?} {:>12.2?} {:>8.2}x",
                out.timings.ordering,
                out.timings.sssp,
                out.timings.total,
                t1 / total
            );
        }
        println!();
    }
}
